package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// fakeClock yields deterministic, strictly increasing times.
func fakeClock() func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.StartSpan("root")
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Every span method must no-op on nil.
	c := s.Child("child", Int("k", 1))
	c.SetAttr(Str("x", "y"))
	c.End()
	s.Attach(tr.Detached("d"))
	s.End()
	if s.Dur() != 0 || s.Attrs() != nil || s.Children() != nil {
		t.Fatal("nil span leaked state")
	}
	if got := tr.Roots(); got != nil {
		t.Fatalf("nil tracer has roots: %v", got)
	}
	if s.LabelCtx() == nil {
		t.Fatal("nil span LabelCtx must return a usable context")
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(Config{now: fakeClock()})
	root := tr.StartSpan("unit", Str("unit", "demo.c"))
	p := root.Child("parse")
	p.End()
	s := root.Child("solve")
	s.SetAttr(Int("steps", 42))
	s.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "unit" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name != "parse" || kids[1].Name != "solve" {
		t.Fatalf("children = %v", kids)
	}
	if kids[0].Dur() <= 0 || roots[0].Dur() <= kids[0].Dur() {
		t.Fatalf("durations not nested: root=%v child=%v", roots[0].Dur(), kids[0].Dur())
	}
	if a := kids[1].Attrs(); len(a) != 1 || a[0].Key != "steps" || a[0].Val != "42" {
		t.Fatalf("attrs = %v", a)
	}
	// Double End is a no-op.
	d := roots[0].Dur()
	roots[0].End()
	if roots[0].Dur() != d {
		t.Fatal("second End changed the duration")
	}
}

func TestDetachedAttachOrder(t *testing.T) {
	tr := New(Config{now: fakeClock()})
	batch := tr.StartSpan("batch")
	// Built "out of order", attached in canonical order.
	b := tr.Detached("unit", Str("unit", "b"))
	a := tr.Detached("unit", Str("unit", "a"))
	b.End()
	a.End()
	batch.Attach(a)
	batch.Attach(b)
	batch.End()
	kids := batch.Children()
	if len(kids) != 2 || kids[0].Attrs()[0].Val != "a" || kids[1].Attrs()[0].Val != "b" {
		t.Fatalf("attach order not preserved: %v", kids)
	}
	if len(tr.Roots()) != 1 {
		t.Fatal("detached spans must not register as roots")
	}
}

func TestWriteTree(t *testing.T) {
	tr := New(Config{now: fakeClock()})
	root := tr.StartSpan("unit", Str("unit", "demo.c"))
	root.Child("parse").End()
	root.End()
	var buf bytes.Buffer
	WriteTree(&buf, tr)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "unit dur=") || !strings.Contains(lines[0], "unit=demo.c") {
		t.Errorf("root line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  parse dur=") {
		t.Errorf("child line %q (want two-space indent)", lines[1])
	}
	if strings.Contains(out, "alloc=") {
		t.Errorf("alloc fields present without MemStats: %q", out)
	}
}

func TestMemStatsDeltas(t *testing.T) {
	tr := New(Config{MemStats: true})
	s := tr.StartSpan("alloc-phase")
	sink = make([]byte, 1<<20)
	s.End()
	if s.allocBytes < 1<<20 {
		t.Errorf("allocBytes = %d, want >= 1MiB", s.allocBytes)
	}
	if s.mallocs <= 0 {
		t.Errorf("mallocs = %d, want > 0", s.mallocs)
	}
	var buf bytes.Buffer
	WriteTree(&buf, tr)
	if !strings.Contains(buf.String(), "alloc=") || !strings.Contains(buf.String(), "mallocs=") {
		t.Errorf("MemStats fields missing: %q", buf.String())
	}
}

var sink []byte

func TestPprofLabels(t *testing.T) {
	tr := New(Config{Labels: true})
	root := tr.StartSpan("unit", Str("unit", "part.c"))
	solve := root.Child("solve-ci")

	labels := map[string]string{}
	pprof.ForLabels(solve.LabelCtx(), func(k, v string) bool {
		labels[k] = v
		return true
	})
	if labels["phase"] != "solve-ci" {
		t.Errorf("phase label = %q, want solve-ci", labels["phase"])
	}
	if labels["unit"] != "part.c" {
		t.Errorf("unit label = %q (must inherit from the unit span)", labels["unit"])
	}
	solve.End()
	// After End the parent's label set is active again.
	labels = map[string]string{}
	pprof.ForLabels(root.LabelCtx(), func(k, v string) bool {
		labels[k] = v
		return true
	})
	if labels["phase"] != "unit" {
		t.Errorf("restored phase label = %q, want unit", labels["phase"])
	}
	root.End()
}

func TestChromeTrace(t *testing.T) {
	tr := New(Config{now: fakeClock()})
	root := tr.StartSpan("batch")
	u := root.Child("unit", Str("unit", "a.c"), Int("worker", 3))
	u.Child("solve").End()
	u.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("want 3 events, got %d", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %s: ph = %q", e.Name, e.Ph)
		}
	}
	// The worker attribute selects the thread lane, inherited by children.
	if doc.TraceEvents[1].Tid != 3 || doc.TraceEvents[2].Tid != 3 {
		t.Errorf("worker lane not applied: tids %d, %d", doc.TraceEvents[1].Tid, doc.TraceEvents[2].Tid)
	}
	if doc.TraceEvents[0].Tid != 0 {
		t.Errorf("batch lane = %d, want 0", doc.TraceEvents[0].Tid)
	}
}

func TestWorkerContext(t *testing.T) {
	if _, ok := Worker(context.Background()); ok {
		t.Fatal("untagged context reports a worker")
	}
	ctx := WithWorker(context.Background(), 7)
	if id, ok := Worker(ctx); !ok || id != 7 {
		t.Fatalf("Worker = %d, %v", id, ok)
	}
	if id, ok := Worker(WithWorker(nil, 2)); !ok || id != 2 {
		t.Fatalf("nil-parent WithWorker broken: %d, %v", id, ok)
	}
}

func TestProfileCapture(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU under a labelled span so the profile has a
	// chance to attribute samples.
	tr := New(Config{Labels: true})
	s := tr.StartSpan("burn", Str("unit", "test"))
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	s.End()
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
	// Both files are gzip-framed protobufs.
	for _, p := range []string{cpu, heap} {
		data, err := os.ReadFile(p)
		if err != nil || len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s: not a gzip profile", p)
		}
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "no/such/dir.pprof")); err == nil {
		t.Error("StartCPUProfile into a missing directory must fail")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no/such/dir.pprof")); err == nil {
		t.Error("WriteHeapProfile into a missing directory must fail")
	}
}
