package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile starts CPU profiling into path and returns the stop
// function (which also closes the file). Combine with a Labels-enabled
// tracer so `go tool pprof -tagshow phase,unit` can slice samples by
// pipeline phase and corpus unit.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path, after a GC so
// the heap numbers reflect live data rather than collection timing.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
