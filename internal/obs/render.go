package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WriteTree renders the tracer's span trees as an indented text tree,
// one line per span:
//
//	unit unit=part.c
//	  parse dur=1.2ms alloc=34567 mallocs=123
//	  solve-ci dur=3.4ms alloc=45678 mallocs=456 steps=1234 ...
//
// The volatile fields use fixed `key=value` tokens (dur=, alloc=,
// mallocs=) so golden tests can scrub them with one regular expression
// while keeping the deterministic attributes intact.
func WriteTree(w io.Writer, t *Tracer) {
	for _, s := range t.Roots() {
		writeSpan(w, s, 0)
	}
}

func writeSpan(w io.Writer, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	io.WriteString(w, s.Name)
	if s.ended {
		fmt.Fprintf(w, " dur=%s", s.dur)
		if s.tracer.cfg.MemStats {
			fmt.Fprintf(w, " alloc=%d mallocs=%d", s.allocBytes, s.mallocs)
		}
	}
	for _, a := range s.attrs {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Val)
	}
	io.WriteString(w, "\n")
	for _, c := range s.children {
		writeSpan(w, c, depth+1)
	}
}

// MetricJSON is the machine-readable shape of one metric. Counters and
// gauges carry Value; histograms carry Hist.
type MetricJSON struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Value *int64    `json:"value,omitempty"`
	Hist  *HistJSON `json:"hist,omitempty"`
}

// HistJSON is a rendered histogram.
type HistJSON struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Buckets []BucketJSON `json:"buckets"`
}

// BucketJSON is one histogram bucket; Le is the inclusive upper bound,
// "+inf" for the overflow bucket.
type BucketJSON struct {
	Le string `json:"le"`
	N  int64  `json:"n"`
}

// MetricsJSON converts snapshots (already in sorted, deterministic
// order) to the JSON shape. Callers embedding the result in byte-stable
// output must pass DeterministicSnapshot(), not Snapshot().
func MetricsJSON(ms []MetricSnapshot) []MetricJSON {
	out := make([]MetricJSON, 0, len(ms))
	for _, s := range ms {
		j := MetricJSON{Name: s.Name, Kind: s.Kind.String()}
		switch s.Kind {
		case KindHistogram:
			h := &HistJSON{Count: s.Count, Sum: s.Sum, Max: s.Max}
			for i, n := range s.Buckets {
				le := "+inf"
				if i < len(s.Bounds) {
					le = strconv.FormatInt(s.Bounds[i], 10)
				}
				h.Buckets = append(h.Buckets, BucketJSON{Le: le, N: n})
			}
			j.Hist = h
		default:
			v := s.Value
			j.Value = &v
		}
		out = append(out, j)
	}
	return out
}
