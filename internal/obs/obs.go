// Package obs is the observability layer of the analysis pipeline: a
// hierarchical phase tracer, a lock-free metrics registry, and profile
// capture hooks. Ruf's study is empirical — its results are tables of
// per-benchmark counts, times, and memory — so the pipeline that
// reproduces it must be able to attribute cost to its phases
// (lex → parse → sema → vdg → solve → checkers → report) rather than
// report only end-of-run totals.
//
// The package depends on the standard library alone, so every other
// package in the repository can import it without cycles.
//
// Two disciplines keep observability from disturbing what it measures:
//
//   - Everything is nil-safe. A nil *Tracer, *Span, *Registry, or
//     metric handle no-ops on every method, so instrumented code calls
//     them unconditionally and a run with tracing disabled stays on the
//     exact pre-instrumentation hot path (golden outputs are
//     byte-identical, and the only residual cost is a nil check at
//     phase — not per-iteration — granularity).
//
//   - Every metric declares a Stability class. Deterministic metrics
//     are pure functions of the analysis results — identical at any
//     worker-pool width and under any worklist strategy for a batch
//     that completes without budget cancellation — and are the only
//     ones rendered into the machine-readable JSON block, which is
//     therefore byte-identical run to run. Wall-clock durations,
//     allocation deltas, and visit-order-dependent counters are
//     Volatile: they appear in the human-readable text tree and the
//     Chrome trace, never in the deterministic JSON.
package obs

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// Config configures a Tracer.
type Config struct {
	// MemStats samples runtime.MemStats at span boundaries and records
	// TotalAlloc/Mallocs deltas per span. ReadMemStats is too expensive
	// for inner loops but fine at phase granularity; the deltas are
	// process-wide, so under a parallel batch they attribute concurrent
	// allocation to whichever spans were open (volatile by nature).
	MemStats bool

	// Labels sets pprof goroutine labels ("phase", and "unit" when the
	// span carries a unit attribute) for the duration of each span, so
	// `go tool pprof -tagfocus`/-tagshow can slice a captured profile by
	// pipeline phase and corpus unit.
	Labels bool

	// now is the clock, injectable for tests; nil means time.Now.
	now func() time.Time
}

// Tracer collects span trees for one run. The zero value of *Tracer
// (nil) is a valid disabled tracer: every method no-ops and every
// derived span is nil.
type Tracer struct {
	cfg Config

	mu    sync.Mutex
	roots []*Span
}

// New builds an enabled tracer.
func New(cfg Config) *Tracer {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Tracer{cfg: cfg}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Attr is one ordered key/value annotation on a span. Values are
// strings so rendering is trivially deterministic.
type Attr struct {
	Key string
	Val string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: strconv.Itoa(v)} }

// Span is one timed phase of the pipeline. Spans form a tree; a span
// is built and ended on a single goroutine (required for the pprof
// label discipline), but distinct subtrees may be built concurrently
// by different workers and attached to a parent afterwards (Attach).
type Span struct {
	tracer *Tracer

	Name  string
	attrs []Attr

	start time.Time
	dur   time.Duration
	ended bool

	// MemStats deltas (Config.MemStats): bytes allocated and mallocs
	// performed process-wide while the span was open.
	allocBytes int64
	mallocs    int64

	children []*Span

	// labelCtx carries the pprof label set active during the span;
	// prevCtx is restored on End.
	labelCtx context.Context
	prevCtx  context.Context
}

// StartSpan opens a root span recorded in the tracer's trace.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := t.newSpan(nil, name, attrs)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Detached opens a span that belongs to no tree yet. Batch workers
// build one detached span per work unit and the batch engine attaches
// them to the batch span in canonical input order — never completion
// order — so the rendered tree is deterministic at any pool width.
func (t *Tracer) Detached(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(nil, name, attrs)
}

func (t *Tracer) newSpan(parent *Span, name string, attrs []Attr) *Span {
	s := &Span{tracer: t, Name: name, attrs: attrs, start: t.cfg.now()}
	if t.cfg.MemStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.allocBytes = -int64(ms.TotalAlloc)
		s.mallocs = -int64(ms.Mallocs)
	}
	if t.cfg.Labels {
		base := context.Background()
		if parent != nil && parent.labelCtx != nil {
			base = parent.labelCtx
		}
		kv := []string{"phase", name}
		for _, a := range attrs {
			if a.Key == "unit" {
				kv = append(kv, "unit", a.Val)
			}
		}
		s.prevCtx = base
		s.labelCtx = pprof.WithLabels(base, pprof.Labels(kv...))
		pprof.SetGoroutineLabels(s.labelCtx)
	}
	return s
}

// Child opens a sub-span. A nil receiver returns a nil span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.newSpan(s, name, attrs)
	s.tracer.mu.Lock()
	s.children = append(s.children, c)
	s.tracer.mu.Unlock()
	return c
}

// End closes the span: duration, MemStats deltas, and pprof label
// restoration. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = s.tracer.cfg.now().Sub(s.start)
	if s.tracer.cfg.MemStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.allocBytes += int64(ms.TotalAlloc)
		s.mallocs += int64(ms.Mallocs)
	}
	if s.tracer.cfg.Labels {
		pprof.SetGoroutineLabels(s.prevCtx)
	}
}

// SetAttr appends an annotation (typically result counters recorded
// after the phase ran).
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, a)
}

// Attach adopts a detached span (and its subtree) as a child. The
// caller sequences Attach calls — the batch engine does so in input
// order after its merge barrier.
func (s *Span) Attach(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.tracer.mu.Lock()
	s.children = append(s.children, child)
	s.tracer.mu.Unlock()
}

// Dur returns the span's measured duration (0 until End).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Attrs returns the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Children returns the sub-spans in attach order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Roots returns the recorded root spans in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// LabelCtx exposes the pprof label context active during the span, for
// tests asserting the label set and for clients that propagate labels
// onto goroutines they spawn themselves.
func (s *Span) LabelCtx() context.Context {
	if s == nil || s.labelCtx == nil {
		return context.Background()
	}
	return s.labelCtx
}

// ---------------------------------------------------------------------------
// Worker identity

// workerKey tags a context with the worker-pool lane that executes an
// item, so per-unit spans can record which lane ran them (and the
// Chrome trace can draw one row per worker).
type workerKey struct{}

// WithWorker returns ctx tagged with a worker-pool lane id.
func WithWorker(ctx context.Context, id int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, workerKey{}, id)
}

// Worker extracts the worker lane id from a context tagged by
// WithWorker; ok is false on an untagged context.
func Worker(ctx context.Context) (int, bool) {
	if ctx == nil {
		return 0, false
	}
	id, ok := ctx.Value(workerKey{}).(int)
	return id, ok
}
