package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c", Deterministic).Add(1)
	r.Gauge("g", Volatile).Set(2)
	r.Gauge("g", Volatile).Max(3)
	r.Histogram("h", Volatile, PowersOfTwo(4)).Observe(5)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot: %v", got)
	}
	if got := r.DeterministicSnapshot(); len(got) != 0 {
		t.Fatalf("nil registry deterministic snapshot: %v", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("units", Deterministic)
	c.Add(3)
	// Re-registration returns the same underlying metric.
	r.Counter("units", Deterministic).Add(2)

	g := r.Gauge("depth", Volatile)
	g.Set(10)
	g.Max(7) // lower: no effect
	g.Max(12)

	h := r.Histogram("pairs", Deterministic, []int64{1, 2, 4})
	for _, v := range []int64{1, 1, 2, 3, 100} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("want 3 metrics, got %d", len(snap))
	}
	// Sorted by name: depth, pairs, units.
	if snap[0].Name != "depth" || snap[1].Name != "pairs" || snap[2].Name != "units" {
		t.Fatalf("order: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[0].Value != 12 {
		t.Errorf("gauge = %d, want 12", snap[0].Value)
	}
	if snap[2].Value != 5 {
		t.Errorf("counter = %d, want 5", snap[2].Value)
	}
	p := snap[1]
	if p.Count != 5 || p.Sum != 107 || p.Max != 100 {
		t.Errorf("hist count/sum/max = %d/%d/%d", p.Count, p.Sum, p.Max)
	}
	// Buckets: <=1: 2, <=2: 1, <=4: 1, +inf: 1.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if p.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, p.Buckets[i], n)
		}
	}

	det := r.DeterministicSnapshot()
	if len(det) != 2 || det[0].Name != "pairs" || det[1].Name != "units" {
		t.Fatalf("deterministic filter wrong: %v", det)
	}
}

func TestReregistrationShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", Deterministic)
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("m", Deterministic)
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo(5) = %v", got)
		}
	}
}

func TestMetricsJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count", Deterministic).Add(4)
	h := r.Histogram("b.hist", Deterministic, []int64{1, 2})
	h.Observe(1)
	h.Observe(5)
	js := MetricsJSON(r.DeterministicSnapshot())
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"a.count","kind":"counter","value":4},` +
		`{"name":"b.hist","kind":"histogram","hist":{"count":2,"sum":6,"max":5,` +
		`"buckets":[{"le":"1","n":1},{"le":"2","n":0},{"le":"+inf","n":1}]}}]`
	if string(data) != want {
		t.Errorf("metrics JSON:\n got %s\nwant %s", data, want)
	}
	// A zero counter still renders its value (pointer, not omitempty).
	r2 := NewRegistry()
	r2.Counter("z", Deterministic)
	data, _ = json.Marshal(MetricsJSON(r2.Snapshot()))
	if !bytes.Contains(data, []byte(`"value":0`)) {
		t.Errorf("zero counter dropped: %s", data)
	}
}

// TestRegistryConcurrent hammers one registry from 8 workers; run under
// -race (CI does) it is the lock-freedom proof for the batch engine's
// shared metrics, and in any mode it checks that concurrent updates
// lose nothing: all written values are commutative sums, so the final
// state must be exact regardless of interleaving.
func TestRegistryConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	r := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Handles resolved inside the worker: registration itself must
			// also be safe under concurrency.
			c := r.Counter("hammer.count", Deterministic)
			g := r.Gauge("hammer.peak", Volatile)
			h := r.Histogram("hammer.hist", Deterministic, PowersOfTwo(10))
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Max(int64(w*perWorker + i))
				h.Observe(int64(i % 512))
			}
		}(w)
	}
	wg.Wait()

	snap := map[string]MetricSnapshot{}
	for _, s := range r.Snapshot() {
		snap[s.Name] = s
	}
	if got := snap["hammer.count"].Value; got != workers*perWorker {
		t.Errorf("counter lost updates: %d, want %d", got, workers*perWorker)
	}
	if got := snap["hammer.peak"].Value; got != (workers-1)*perWorker+perWorker-1 {
		t.Errorf("gauge max = %d", got)
	}
	h := snap["hammer.hist"]
	if h.Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, n := range h.Buckets {
		bucketSum += n
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
}
