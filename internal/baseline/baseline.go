// Package baseline implements a Weihl-style completely flow-insensitive,
// program-wide points-to analysis: one global store approximation shared
// by every program point, no kills, no strong updates. This is the
// comparator used by the pre-1992 literature the paper discusses
// ([Wei80], [Cou86]); the paper's point-specific analyses were known to
// beat it, and reproducing it lets the benches quantify by how much.
package baseline

import (
	"aliaslab/internal/core"
	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// Result holds the program-wide solution: per-output value pair sets
// plus a single global store set standing in for every store output.
type Result struct {
	Graph *vdg.Graph

	// Values maps non-store outputs to their pair sets.
	Values map[*vdg.Output]*core.PairSet

	// Store is the single program-wide store approximation.
	Store *core.PairSet

	// Callees is the discovered call graph.
	Callees map[*vdg.Node][]*vdg.FuncGraph
	Callers map[*vdg.FuncGraph][]*vdg.Node

	Metrics core.Metrics
}

// Pairs returns the pair set of o: the global store set for store
// outputs, the per-output set otherwise.
func (r *Result) Pairs(o *vdg.Output) *core.PairSet {
	if o.IsStore {
		return r.Store
	}
	if s, ok := r.Values[o]; ok {
		return s
	}
	return &core.PairSet{}
}

// Sets materializes a per-output map compatible with the stats package:
// every store output shares the global set.
func (r *Result) Sets() map[*vdg.Output]*core.PairSet {
	out := make(map[*vdg.Output]*core.PairSet)
	r.Graph.Outputs(func(o *vdg.Output) {
		if o.IsStore {
			out[o] = r.Store
		} else if s, ok := r.Values[o]; ok {
			out[o] = s
		}
	})
	return out
}

type workItem struct {
	in   *vdg.Input
	pair core.Pair
}

type analyzer struct {
	g    *vdg.Graph
	res  *Result
	work []workItem
	head int
}

// Analyze runs the program-wide analysis to a fixpoint.
func Analyze(g *vdg.Graph) *Result {
	a := &analyzer{
		g: g,
		res: &Result{
			Graph:   g,
			Values:  make(map[*vdg.Output]*core.PairSet),
			Store:   &core.PairSet{},
			Callees: make(map[*vdg.Node][]*vdg.FuncGraph),
			Callers: make(map[*vdg.FuncGraph][]*vdg.Node),
		},
	}
	empty := g.Universe.Empty()
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KAddr || n.Kind == vdg.KAlloc {
				a.flowOut(n.Outputs[0], core.Pair{Path: empty, Ref: n.Path})
			}
		}
	}
	for a.head < len(a.work) {
		item := a.work[a.head]
		a.head++
		a.res.Metrics.FlowIns++
		a.flowIn(item.in, item.pair)
	}
	a.work = nil
	return a.res
}

// flowOut adds a pair to an output. All store outputs share the global
// set; adding to it notifies the consumers of *every* store output.
func (a *analyzer) flowOut(out *vdg.Output, pair core.Pair) {
	a.res.Metrics.FlowOuts++
	if out.IsStore {
		if !a.res.Store.Add(pair) {
			return
		}
		a.res.Metrics.Pairs++
		a.g.Outputs(func(o *vdg.Output) {
			if !o.IsStore {
				return
			}
			for _, in := range o.Consumers {
				a.work = append(a.work, workItem{in: in, pair: pair})
			}
		})
		return
	}
	s, ok := a.res.Values[out]
	if !ok {
		s = &core.PairSet{}
		a.res.Values[out] = s
	}
	if !s.Add(pair) {
		return
	}
	a.res.Metrics.Pairs++
	for _, in := range out.Consumers {
		a.work = append(a.work, workItem{in: in, pair: pair})
	}
}

func (a *analyzer) pairsAt(src *vdg.Output) []core.Pair {
	if src.IsStore {
		return a.res.Store.List()
	}
	if s, ok := a.res.Values[src]; ok {
		return s.List()
	}
	return nil
}

func (a *analyzer) flowIn(in *vdg.Input, pair core.Pair) {
	n := in.Node
	u := a.g.Universe
	switch n.Kind {
	case vdg.KLookup:
		out := n.Outputs[0]
		switch in.Index {
		case 0:
			if !pair.Path.IsEmptyOffset() {
				return
			}
			for _, ps := range a.res.Store.List() {
				if paths.Dom(pair.Ref, ps.Path) {
					a.flowOut(out, core.Pair{Path: u.Subtract(ps.Path, pair.Ref), Ref: ps.Ref})
				}
			}
		case 1:
			for _, pl := range a.pairsAt(n.Loc()) {
				if !pl.Path.IsEmptyOffset() {
					continue
				}
				if paths.Dom(pl.Ref, pair.Path) {
					a.flowOut(out, core.Pair{Path: u.Subtract(pair.Path, pl.Ref), Ref: pair.Ref})
				}
			}
		}
	case vdg.KUpdate:
		// No strong updates, no kills: every write only adds to the
		// global store.
		out := n.Outputs[0]
		switch in.Index {
		case 0:
			if !pair.Path.IsEmptyOffset() {
				return
			}
			for _, pv := range a.pairsAt(n.Value()) {
				a.flowOut(out, core.Pair{Path: u.Append(pair.Ref, pv.Path), Ref: pv.Ref})
			}
		case 2:
			for _, pl := range a.pairsAt(n.Loc()) {
				if !pl.Path.IsEmptyOffset() {
					continue
				}
				a.flowOut(out, core.Pair{Path: u.Append(pl.Ref, pair.Path), Ref: pair.Ref})
			}
		case 1:
			// The global store set is shared; nothing to forward.
		}
	case vdg.KCall:
		switch in.Index {
		case 0:
			if !pair.Path.IsEmptyOffset() || pair.Ref.Depth() != 0 {
				return
			}
			callee := a.g.FuncByBase[pair.Ref.Base()]
			if callee == nil {
				return
			}
			a.addCallEdge(n, callee)
		case 1:
			// Store is global: nothing to forward.
		default:
			argIdx := in.Index - 2
			for _, callee := range a.res.Callees[n] {
				if argIdx < len(callee.ParamOuts) {
					a.flowOut(callee.ParamOuts[argIdx], pair)
				}
			}
		}
	case vdg.KReturn:
		if in.Index == 1 {
			for _, call := range a.res.Callers[n.Fn] {
				if res := vdg.CallResultOut(call); res != nil {
					a.flowOut(res, pair)
				}
			}
		}
	case vdg.KGamma:
		if !n.Outputs[0].IsStore {
			a.flowOut(n.Outputs[0], pair)
		}
	case vdg.KPrimop:
		if n.Transparent {
			a.flowOut(n.Outputs[0], pair)
		}
	case vdg.KAlloc:
		a.flowOut(n.Outputs[0], pair)
	case vdg.KFieldAddr:
		if pair.Path.IsEmptyOffset() {
			var ref *paths.Path
			if n.Transparent {
				ref = u.UnionField(pair.Ref, n.Field)
			} else {
				ref = u.Field(pair.Ref, n.Field)
			}
			a.flowOut(n.Outputs[0], core.Pair{Path: pair.Path, Ref: ref})
		}
	case vdg.KIndexAddr:
		if pair.Path.IsEmptyOffset() {
			a.flowOut(n.Outputs[0], core.Pair{Path: pair.Path, Ref: u.Index(pair.Ref)})
		}
	case vdg.KExtract:
		want := paths.Op{Field: n.Field, Union: n.Transparent}
		if op, ok := pair.Path.FirstOp(); ok && op.Overlaps(want) {
			a.flowOut(n.Outputs[0], core.Pair{Path: u.TailAfterFirst(pair.Path), Ref: pair.Ref})
		}
	}
}

func (a *analyzer) addCallEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range a.res.Callees[n] {
		if c == callee {
			return
		}
	}
	a.res.Callees[n] = append(a.res.Callees[n], callee)
	a.res.Callers[callee] = append(a.res.Callers[callee], n)
	for i, argIn := range vdg.CallArgs(n) {
		if i >= len(callee.ParamOuts) {
			break
		}
		for _, pair := range a.pairsAt(argIn.Src) {
			a.flowOut(callee.ParamOuts[i], pair)
		}
	}
	if rv := callee.ReturnValue(); rv != nil {
		if res := vdg.CallResultOut(n); res != nil {
			for _, pair := range a.pairsAt(rv) {
				a.flowOut(res, pair)
			}
		}
	}
}
