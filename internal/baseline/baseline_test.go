package baseline_test

import (
	"strings"
	"testing"

	"aliaslab/internal/baseline"
	"aliaslab/internal/core"
	"aliaslab/internal/corpus"
	"aliaslab/internal/driver"
	"aliaslab/internal/vdg"
)

func load(t *testing.T, src string) *driver.Unit {
	t.Helper()
	u, err := driver.LoadString("t.c", src, vdg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestNoKills: the program-wide analysis has no strong updates, so a
// pointer reassignment keeps both targets — unlike CI.
func TestNoKills(t *testing.T) {
	u := load(t, `
int a, b;
int *p;
int main(void) {
	p = &a;
	p = &b;
	return *p;
}
`)
	bl := baseline.Analyze(u.Graph)
	var refs []string
	for _, pr := range bl.Store.Sorted() {
		if base := pr.Path.Base(); base != nil && base.Name == "p" {
			refs = append(refs, pr.Ref.String())
		}
	}
	if strings.Join(refs, ",") != "a,b" {
		t.Fatalf("baseline p -> %v, want both targets (no kills)", refs)
	}

	// CI, by contrast, strongly updates and keeps only b.
	ci := core.AnalyzeInsensitive(u.Graph)
	final := ci.Pairs(u.Graph.Entry.ReturnStore())
	ciRefs := 0
	for _, pr := range final.List() {
		if base := pr.Path.Base(); base != nil && base.Name == "p" {
			ciRefs++
		}
	}
	if ciRefs != 1 {
		t.Fatalf("CI keeps %d targets for p, want 1", ciRefs)
	}
}

// TestFlowInsensitivity: a pair that holds anywhere holds everywhere —
// the read before the assignment still sees it.
func TestFlowInsensitivity(t *testing.T) {
	u := load(t, `
int a;
int *p;
int use(void) { return *p; }
int main(void) {
	int x;
	x = use();
	p = &a;
	return x + use();
}
`)
	bl := baseline.Analyze(u.Graph)
	// In use(), *p reads the global store: it must see a.
	fg := u.Graph.FuncOf[u.Graph.Prog.FuncMap["use"]]
	found := false
	for _, n := range fg.Nodes {
		if n.Kind == vdg.KLookup && n.Indirect {
			for _, r := range bl.Pairs(n.Loc()).Referents() {
				if r.String() == "a" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("program-wide store must expose p -> a to every read")
	}
}

// TestBaselineNeverMorePreciseThanCI on the whole corpus: at every
// indirect operation the baseline's referent set contains CI's.
func TestBaselineNeverMorePreciseThanCI(t *testing.T) {
	for _, name := range corpus.Names() {
		u, err := corpus.Load(name, vdg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ci := core.AnalyzeInsensitive(u.Graph)
		bl := baseline.Analyze(u.Graph)
		for _, fg := range u.Graph.Funcs {
			for _, n := range fg.Nodes {
				if (n.Kind != vdg.KLookup && n.Kind != vdg.KUpdate) || !n.Indirect {
					continue
				}
				blRefs := make(map[string]bool)
				for _, r := range bl.Pairs(n.Loc()).Referents() {
					blRefs[r.String()] = true
				}
				for _, r := range ci.Pairs(n.Loc()).Referents() {
					if !blRefs[r.String()] {
						t.Errorf("%s: baseline misses CI referent %s at %s", name, r, n.Pos)
					}
				}
			}
		}
	}
}

// TestCallGraphDiscovery: function pointers resolve through the global
// value sets exactly as in CI.
func TestCallGraphDiscovery(t *testing.T) {
	u := load(t, `
int one(void) { return 1; }
int two(void) { return 2; }
int (*fp)(void);
int main(void) {
	fp = one;
	fp = two;
	return fp();
}
`)
	bl := baseline.Analyze(u.Graph)
	total := 0
	for _, callees := range bl.Callees {
		total += len(callees)
	}
	if total != 2 {
		t.Fatalf("discovered %d callees, want 2 (no kills: both assignments live)", total)
	}
}

// TestSetsViewSharesGlobalStore: every store output maps to the same
// PairSet instance.
func TestSetsViewSharesGlobalStore(t *testing.T) {
	u := load(t, `int a; int *p; int main(void) { p = &a; return *p; }`)
	bl := baseline.Analyze(u.Graph)
	sets := bl.Sets()
	var stores []*core.PairSet
	u.Graph.Outputs(func(o *vdg.Output) {
		if o.IsStore {
			stores = append(stores, sets[o])
		}
	})
	if len(stores) < 2 {
		t.Skip("not enough store outputs")
	}
	for _, s := range stores {
		if s != bl.Store {
			t.Fatal("store outputs must share the single global set")
		}
	}
}
