package core

import (
	"fmt"

	"aliaslab/internal/limits"
	"aliaslab/internal/obs"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// AttachEngine annotates a solve span with a run's engine counters and
// ends it. The counters are the same record EngineStats renders; on the
// span they let a trace attribute fixpoint cost (steps, meets, queue
// depth) to the exact attempt that paid it. Nil-safe.
func AttachEngine(sp *obs.Span, st solver.Stats) {
	if sp == nil {
		return
	}
	sp.SetAttr(obs.Str("worklist", st.Strategy.String()))
	sp.SetAttr(obs.Int("steps", st.Steps))
	sp.SetAttr(obs.Int("meets", st.Meets))
	sp.SetAttr(obs.Int("pairInserts", st.PairInserts))
	sp.SetAttr(obs.Int("enqueued", st.Enqueued))
	sp.SetAttr(obs.Int("peakDepth", st.PeakDepth))
	sp.End()
}

// Tier records how much an analysis had to degrade to fit its budget.
// The ordering is meaningful: higher tiers are coarser answers.
type Tier int

const (
	// TierFull: the requested analysis converged within budget.
	TierFull Tier = iota
	// TierWidened: the exact context-sensitive analysis blew its
	// budget; the widened variant (assumption sets collapsed beyond a
	// bound) converged. Sound over-approximation of the exact CS
	// fixpoint.
	TierWidened
	// TierCIFallback: even the widened context-sensitive analysis blew
	// its budget; the context-insensitive result is returned instead.
	// Sound (CI over-approximates CS) but coarsest.
	TierCIFallback
	// TierPartialCI: the context-insensitive analysis itself hit the
	// budget. The returned sets are a partial fixpoint — an
	// under-approximation — and are NOT a sound may-alias answer; they
	// are returned only so clients can report progress.
	TierPartialCI
)

func (t Tier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierWidened:
		return "widened"
	case TierCIFallback:
		return "ci-fallback"
	case TierPartialCI:
		return "partial-ci"
	}
	return fmt.Sprintf("core.Tier(%d)", int(t))
}

// Degraded reports whether the answer is anything other than the
// analysis that was asked for.
func (t Tier) Degraded() bool { return t != TierFull }

// Sound reports whether the tier's sets over-approximate the exact
// answer (everything except a partial CI fixpoint).
func (t Tier) Sound() bool { return t != TierPartialCI }

// DefaultWidenAssumptions is the tier-2 assumption-set bound used when
// the caller does not pick one. Small by design: widening exists to
// tame combinatorial blowup, and the assumption sets observed on the
// paper's corpus rarely exceed a handful of elements.
const DefaultWidenAssumptions = 4

// GovernedOptions configures AnalyzeGoverned.
type GovernedOptions struct {
	// Budget bounds each attempt. Step and pair caps are per attempt;
	// the wall-clock deadline in Budget.Ctx spans all attempts.
	Budget limits.Budget

	// Sensitive requests the context-sensitive analysis; false runs
	// (budgeted) CI only.
	Sensitive bool

	// WidenAssumptions is the tier-2 assumption-set bound
	// (DefaultWidenAssumptions when 0).
	WidenAssumptions int

	// MaxSteps is the legacy context-sensitive step bound, kept
	// distinct from Budget.MaxSteps for callers that want the paper's
	// "the unoptimized algorithm is exponential" safety valve without
	// any other governance (0 = unlimited).
	MaxSteps int

	// Strategy selects the solver engine's worklist discipline for
	// every attempt in the pipeline (zero value: FIFO).
	Strategy solver.Strategy

	// Span, when non-nil, records one child span per solve attempt
	// (solve-ci, solve-cs, solve-cs-widened) with the attempt's engine
	// counters attached. Nil traces nothing.
	Span *obs.Span
}

// GovernedResult is the outcome of the degradation pipeline.
type GovernedResult struct {
	// CI is always populated (possibly partial at TierPartialCI).
	CI *Result
	// CS is the context-sensitive result that produced Sets, nil when
	// CS was not requested or the pipeline fell back to CI.
	CS *SensitiveResult

	// Sets is the final answer: CS stripped pairs at TierFull/
	// TierWidened, the CI sets otherwise.
	Sets map[*vdg.Output]*PairSet

	// Tier tells how degraded the answer is; Stopped is the limit that
	// forced the (final) degradation, nil at TierFull.
	Tier    Tier
	Stopped *limits.Violation

	// Notes is a human-readable trace of the degradation decisions, in
	// order, for reports and logs.
	Notes []string
}

// Degraded reports whether any degradation occurred.
func (r *GovernedResult) Degraded() bool { return r.Tier.Degraded() }

// AnalyzeGoverned runs the analysis pipeline under a resource budget
// with three-tier graceful degradation:
//
//	tier 0  exact context-sensitive analysis (when requested)
//	tier 1  context-sensitive with assumption-set widening
//	tier 2  fall back to the context-insensitive result
//
// Every tier transition is forced by a tripped budget and recorded in
// Notes. The context-insensitive analysis runs first (it also feeds
// the §4.2 CS optimizations); if it cannot finish within budget the
// pipeline returns its partial state marked TierPartialCI rather than
// hanging — the one case where the answer is not sound.
func AnalyzeGoverned(g *vdg.Graph, opts GovernedOptions) *GovernedResult {
	r := &GovernedResult{}

	sp := opts.Span.Child("solve-ci")
	r.CI = AnalyzeInsensitiveEngine(g, opts.Budget, opts.Strategy)
	AttachEngine(sp, r.CI.Engine)
	if r.CI.Stopped != nil {
		r.Tier = TierPartialCI
		r.Stopped = r.CI.Stopped
		r.Sets = r.CI.Sets
		r.note("context-insensitive analysis stopped early: %v", r.CI.Stopped)
		return r
	}

	if !opts.Sensitive {
		r.Tier = TierFull
		r.Sets = r.CI.Sets
		return r
	}

	sp = opts.Span.Child("solve-cs")
	cs := AnalyzeSensitive(g, SensitiveOptions{
		CI: r.CI, MaxSteps: opts.MaxSteps, Budget: opts.Budget, Strategy: opts.Strategy,
	})
	AttachEngine(sp, cs.Engine)
	if !cs.Aborted {
		r.Tier = TierFull
		r.CS = cs
		r.Sets = cs.Strip()
		return r
	}
	r.note("exact context-sensitive analysis stopped early: %v", csStopReason(cs, opts))

	widen := opts.WidenAssumptions
	if widen <= 0 {
		widen = DefaultWidenAssumptions
	}
	sp = opts.Span.Child("solve-cs-widened")
	wcs := AnalyzeSensitive(g, SensitiveOptions{
		CI: r.CI, MaxSteps: opts.MaxSteps, MaxAssumptions: widen, Budget: opts.Budget, Strategy: opts.Strategy,
	})
	AttachEngine(sp, wcs.Engine)
	if !wcs.Aborted {
		r.Tier = TierWidened
		r.CS = wcs
		r.Sets = wcs.Strip()
		r.Stopped = cs.Stopped
		r.note("recovered with assumption-set widening (bound %d)", widen)
		return r
	}
	r.note("widened context-sensitive analysis stopped early: %v", csStopReason(wcs, opts))

	r.Tier = TierCIFallback
	r.Stopped = wcs.Stopped
	if r.Stopped == nil {
		r.Stopped = cs.Stopped
	}
	r.Sets = r.CI.Sets
	r.note("fell back to the context-insensitive result")
	return r
}

func (r *GovernedResult) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// csStopReason renders why a CS attempt aborted (budget violation, or
// the legacy MaxSteps bound which carries no Violation).
func csStopReason(cs *SensitiveResult, opts GovernedOptions) string {
	if cs.Stopped != nil {
		return cs.Stopped.Error()
	}
	return fmt.Sprintf("step bound %d exhausted", opts.MaxSteps)
}
