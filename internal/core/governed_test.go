package core_test

// Degradation tests: adversarial fixtures (deep pointer chains,
// recursive struct cycles, wide call fan-out with pointer swapping)
// driven through AnalyzeGoverned with budgets tuned at runtime from
// the fixture's own measured work, asserting that (a) budgeted runs
// terminate under the limit, (b) degraded results remain sound
// supersets of the exact answers, and (c) the degradation tier is
// reported.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"aliaslab/internal/core"
	"aliaslab/internal/limits"
	"aliaslab/internal/vdg"
)

// deepChainSrc builds an n-level pointer chain: x1 = &x0, x2 = &x1, …
// with a full-depth dereference at the end.
func deepChainSrc(n int) string {
	var sb strings.Builder
	sb.WriteString("int x0;\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "int %sx%d;\n", strings.Repeat("*", i), i)
	}
	sb.WriteString("int main() {\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "  x%d = &x%d;\n", i, i-1)
	}
	fmt.Fprintf(&sb, "  return %sx%d;\n}\n", strings.Repeat("*", n), n)
	return sb.String()
}

// structCycleSrc builds recursive struct cycles: a doubly linked ring
// threaded through shared link/advance routines.
func structCycleSrc(n int) string {
	var sb strings.Builder
	sb.WriteString("struct node { struct node *next; struct node *prev; int v; };\n")
	fmt.Fprintf(&sb, "struct node nodes[%d];\n", n)
	sb.WriteString(`
struct node *advance(struct node *n) { return n->next; }
void link(struct node *a, struct node *b) { a->next = b; b->prev = a; }
void walk(struct node *n) { while (n->v) { n = advance(n); n = n->prev->next; } }
int main() {
`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  link(&nodes[%d], &nodes[%d]);\n", i, (i+1)%n)
	}
	sb.WriteString("  walk(&nodes[0]);\n  return 0;\n}\n")
	return sb.String()
}

// swapRecSrc builds wide call fan-out into a recursive pointer-swapping
// procedure: every formal may denote many locations (defeating the
// single-location pruning), so the context-sensitive analysis pays for
// assumption tracking that the insensitive one does not.
func swapRecSrc(k int) string {
	var sb strings.Builder
	sb.WriteString("int c;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "int t%d;\n", i)
	}
	sb.WriteString(`
void fill(int **p, int **q) {
  int *tmp;
  if (c) { fill(q, p); }
  tmp = *p;
  *p = *q;
  *q = tmp;
}
int main() {
  int *u; int *v;
`)
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "  if (c == %d) { u = &t%d; } else { v = &t%d; }\n", i, i, i)
	}
	sb.WriteString("  fill(&u, &v);\n  fill(&v, &u);\n  return **(&u);\n}\n")
	return sb.String()
}

// requireSubset asserts every pair of a appears in b, per output.
func requireSubset(t *testing.T, what string, a, b map[*vdg.Output]*core.PairSet) {
	t.Helper()
	for o, sa := range a {
		sb := b[o]
		for _, p := range sa.List() {
			if sb == nil || !sb.Has(p) {
				t.Fatalf("%s: pair %s -> %s on %s output missing from the larger set",
					what, p.Path, p.Ref, o.Node.Kind)
			}
		}
	}
}

func TestGovernedUnlimitedMatchesExactAnalyses(t *testing.T) {
	for _, src := range []string{deepChainSrc(12), structCycleSrc(8), swapRecSrc(6)} {
		u := load(t, src)
		got := core.AnalyzeGoverned(u.Graph, core.GovernedOptions{Sensitive: true})
		if got.Tier != core.TierFull || got.Degraded() {
			t.Fatalf("unlimited budget degraded: tier=%v notes=%v", got.Tier, got.Notes)
		}
		want := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: core.AnalyzeInsensitive(u.Graph)}).Strip()
		requireSubset(t, "governed ⊆ exact", got.Sets, want)
		requireSubset(t, "exact ⊆ governed", want, got.Sets)
	}
}

func TestAdversarialFixturesTerminateUnderBudget(t *testing.T) {
	fixtures := map[string]string{
		"deep-chain":   deepChainSrc(40),
		"struct-cycle": structCycleSrc(24),
		"swap-rec":     swapRecSrc(24),
	}
	for name, src := range fixtures {
		u := load(t, src)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		start := time.Now()
		got := core.AnalyzeGoverned(u.Graph, core.GovernedOptions{
			Sensitive: true,
			Budget:    limits.Budget{Ctx: ctx, MaxSteps: 200, MaxPairs: 200},
		})
		cancel()
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("%s: budgeted run took %v", name, elapsed)
		}
		if got == nil || got.Sets == nil {
			t.Fatalf("%s: no result under budget", name)
		}
		if !got.Degraded() {
			t.Fatalf("%s: a 200-step budget should degrade (tier=%v)", name, got.Tier)
		}
		if got.Stopped == nil {
			t.Fatalf("%s: degraded result carries no Stopped violation", name)
		}
	}
}

// TestGovernedCIFallbackIsSupersetOfExactCI forces both context-
// sensitive attempts over budget while the context-insensitive pass
// fits, and verifies the fallback answer against an independently
// computed exact CI result.
func TestGovernedCIFallbackIsSupersetOfExactCI(t *testing.T) {
	u := load(t, swapRecSrc(12))

	// Measure the fixture's own work to place the budget between the
	// CI cost and the cheapest CS attempt.
	exactCI := core.AnalyzeInsensitive(u.Graph)
	exactCS := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: exactCI})
	widenedCS := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: exactCI, MaxAssumptions: core.DefaultWidenAssumptions})
	cheapestCS := exactCS.Metrics.FlowIns
	if widenedCS.Metrics.FlowIns < cheapestCS {
		cheapestCS = widenedCS.Metrics.FlowIns
	}
	if cheapestCS <= exactCI.Metrics.FlowIns+2 {
		t.Fatalf("fixture not adversarial: CI %d flow-ins, cheapest CS %d",
			exactCI.Metrics.FlowIns, cheapestCS)
	}
	budget := limits.Budget{MaxSteps: (exactCI.Metrics.FlowIns + cheapestCS) / 2}

	got := core.AnalyzeGoverned(u.Graph, core.GovernedOptions{Sensitive: true, Budget: budget})
	if got.Tier != core.TierCIFallback {
		t.Fatalf("tier = %v, want ci-fallback (notes: %v)", got.Tier, got.Notes)
	}
	if !got.Degraded() || got.Stopped == nil {
		t.Fatalf("fallback not marked degraded: %+v", got)
	}
	if !got.Tier.Sound() {
		t.Fatalf("ci-fallback must be sound")
	}
	// The degraded answer must over-approximate the exact CI answer.
	requireSubset(t, "exact CI ⊆ degraded", exactCI.Sets, got.Sets)
	// And the exact CS answer (soundness all the way down).
	requireSubset(t, "exact CS ⊆ degraded", exactCS.Strip(), got.Sets)
	if len(got.Notes) < 3 {
		t.Fatalf("expected a three-step degradation trace, got %v", got.Notes)
	}
}

// TestGovernedWidenedTierRecovers places the budget between the
// widened and the exact context-sensitive cost, so tier 1 absorbs the
// blowup without falling all the way back to CI.
func TestGovernedWidenedTierRecovers(t *testing.T) {
	u := load(t, swapRecSrc(12))
	exactCI := core.AnalyzeInsensitive(u.Graph)
	exactCS := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: exactCI})
	const widen = 2
	widenedCS := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: exactCI, MaxAssumptions: widen})
	if widenedCS.Metrics.FlowIns+2 > exactCS.Metrics.FlowIns {
		t.Skipf("no widening gap on this fixture: widened %d, exact %d flow-ins",
			widenedCS.Metrics.FlowIns, exactCS.Metrics.FlowIns)
	}
	budget := limits.Budget{MaxSteps: (widenedCS.Metrics.FlowIns + exactCS.Metrics.FlowIns) / 2}

	got := core.AnalyzeGoverned(u.Graph, core.GovernedOptions{
		Sensitive: true, Budget: budget, WidenAssumptions: widen,
	})
	if got.Tier != core.TierWidened {
		t.Fatalf("tier = %v, want widened (notes: %v)", got.Tier, got.Notes)
	}
	if !got.Degraded() || got.CS == nil || !got.CS.Widened {
		t.Fatalf("widened tier not marked: %+v", got)
	}
	// Soundness lattice: exact CS ⊆ widened CS ⊆ exact CI.
	requireSubset(t, "exact CS ⊆ widened", exactCS.Strip(), got.Sets)
	requireSubset(t, "widened ⊆ exact CI", got.Sets, exactCI.Sets)
}

// TestGovernedDeadlineStopsCI: with an already-expired deadline even
// the CI pass stops; the result is partial and flagged unsound.
func TestGovernedDeadlineStopsCI(t *testing.T) {
	u := load(t, deepChainSrc(40)) // >pollInterval flow-ins so the gate polls ctx
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := core.AnalyzeGoverned(u.Graph, core.GovernedOptions{
		Sensitive: true, Budget: limits.Budget{Ctx: ctx},
	})
	if got.Tier != core.TierPartialCI {
		t.Fatalf("tier = %v, want partial-ci", got.Tier)
	}
	if got.Tier.Sound() {
		t.Fatal("a partial CI fixpoint must not be marked sound")
	}
	if got.Stopped == nil || got.Stopped.Reason != limits.Deadline {
		t.Fatalf("want Deadline violation, got %v", got.Stopped)
	}
}

// TestBudgetedCIMatchesUnbudgetedWhenUnderLimit: a budget the fixture
// fits inside must not perturb the result.
func TestBudgetedCIMatchesUnbudgetedWhenUnderLimit(t *testing.T) {
	u := load(t, structCycleSrc(8))
	plain := core.AnalyzeInsensitive(u.Graph)
	budgeted := core.AnalyzeInsensitiveBudgeted(u.Graph, limits.Budget{
		MaxSteps: plain.Metrics.FlowIns + 1,
		MaxPairs: plain.Metrics.Pairs + 1,
	})
	if budgeted.Stopped != nil {
		t.Fatalf("budget with headroom tripped: %v", budgeted.Stopped)
	}
	if budgeted.Metrics != plain.Metrics {
		t.Fatalf("metrics differ: %+v vs %+v", budgeted.Metrics, plain.Metrics)
	}
	requireSubset(t, "plain ⊆ budgeted", plain.Sets, budgeted.Sets)
	requireSubset(t, "budgeted ⊆ plain", budgeted.Sets, plain.Sets)
}
