package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// fakeFormals creates distinct placeholder outputs to anchor assumptions.
var fakeFormals = []*vdg.Output{{ID: 1}, {ID: 2}, {ID: 3}}

// pairUniverse builds a small path universe and a pool of pairs for the
// property tests.
func pairUniverse() (*paths.Universe, []Pair) {
	u := paths.NewUniverse()
	var pool []Pair
	var locs []*paths.Path
	for _, name := range []string{"a", "b", "c"} {
		b := u.NewBase(paths.VarBase, name, false, false)
		locs = append(locs, u.Root(b))
		locs = append(locs, u.Field(u.Root(b), "f"))
	}
	h := u.NewBase(paths.HeapBase, "m", false, true)
	locs = append(locs, u.Root(h), u.Index(u.Root(h)))
	for _, p := range locs {
		for _, r := range locs {
			pool = append(pool, Pair{Path: p, Ref: r})
		}
	}
	return u, pool
}

func TestPairSetBasics(t *testing.T) {
	_, pool := pairUniverse()
	s := &PairSet{}
	if s.Len() != 0 || s.Has(pool[0]) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(pool[0]) || s.Add(pool[0]) {
		t.Fatal("Add idempotence broken")
	}
	s.Add(pool[1])
	if s.Len() != 2 || !s.Has(pool[1]) {
		t.Fatal("membership broken")
	}
	if len(s.List()) != 2 || len(s.Sorted()) != 2 {
		t.Fatal("views lost elements")
	}
	// Sorted must be ordered by (path, ref) IDs.
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if !sorted[i-1].less(sorted[i]) {
			t.Fatal("Sorted out of order")
		}
	}
}

func TestPairSetReferentsFilterEmptyPath(t *testing.T) {
	u, _ := pairUniverse()
	b := u.NewBase(paths.VarBase, "x", false, false)
	root := u.Root(b)
	s := &PairSet{}
	s.Add(Pair{Path: u.Empty(), Ref: root})               // value pair
	s.Add(Pair{Path: u.Field(u.Empty(), "f"), Ref: root}) // offset pair
	s.Add(Pair{Path: root, Ref: root})                    // store pair
	refs := s.Referents()
	if len(refs) != 1 || refs[0] != root {
		t.Fatalf("Referents = %v", refs)
	}
}

// Property: a PairSet behaves as a set — its List has no duplicates and
// exactly the elements added.
func TestQuickPairSetIsASet(t *testing.T) {
	_, pool := pairUniverse()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := &PairSet{}
		want := make(map[Pair]bool)
		for i := 0; i < int(n); i++ {
			p := pool[r.Intn(len(pool))]
			s.Add(p)
			want[p] = true
		}
		if s.Len() != len(want) {
			return false
		}
		seen := make(map[Pair]bool)
		for _, p := range s.List() {
			if seen[p] || !want[p] {
				return false
			}
			seen[p] = true
		}
		return len(seen) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestASetSubsetAndUnion(t *testing.T) {
	_, pool := pairUniverse()
	at := NewATable()
	a1 := Assumption{Formal: fakeFormals[0], P: pool[0]}
	a2 := Assumption{Formal: fakeFormals[1], P: pool[1]}
	a3 := Assumption{Formal: fakeFormals[2], P: pool[2]}

	s12 := at.Make(a1, a2)
	s123 := at.Make(a1, a2, a3)
	s21 := at.Make(a2, a1)
	if s12 != s21 {
		t.Fatal("interning must canonicalize order")
	}
	if !s12.SubsetOf(s123) || s123.SubsetOf(s12) {
		t.Fatal("SubsetOf broken")
	}
	if !at.EmptySet().SubsetOf(s12) || s12.SubsetOf(at.EmptySet()) {
		t.Fatal("empty-set subset relations broken")
	}
	if got := at.Union(s12, at.Make(a3)); got != s123 {
		t.Fatalf("union = %v, want %v", got, s123)
	}
	if at.Union(s12, s12) != s12 {
		t.Fatal("self-union must intern to the same set")
	}
	if at.Make(a1, a1, a1) != at.Make(a1) {
		t.Fatal("duplicate elements must collapse")
	}
}

// Property: Union is commutative, associative, idempotent, and
// monotonic with respect to SubsetOf.
func TestQuickASetUnionLattice(t *testing.T) {
	_, pool := pairUniverse()
	at := NewATable()
	mk := func(r *rand.Rand) *ASet {
		var elems []Assumption
		for i := 0; i < r.Intn(4); i++ {
			elems = append(elems, Assumption{Formal: fakeFormals[r.Intn(3)], P: pool[r.Intn(len(pool))]})
		}
		return at.Make(elems...)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := mk(r), mk(r), mk(r)
		if at.Union(a, b) != at.Union(b, a) {
			return false
		}
		if at.Union(at.Union(a, b), c) != at.Union(a, at.Union(b, c)) {
			return false
		}
		if at.Union(a, a) != a {
			return false
		}
		u := at.Union(a, b)
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQSetSubsumption(t *testing.T) {
	_, pool := pairUniverse()
	at := NewATable()
	a1 := Assumption{Formal: fakeFormals[0], P: pool[0]}
	a2 := Assumption{Formal: fakeFormals[1], P: pool[1]}

	s := &QSet{}
	p := pool[5]
	if !s.Add(QPair{P: p, A: at.Make(a1, a2)}) {
		t.Fatal("first add must succeed")
	}
	// A weaker set replaces the stronger one.
	if !s.Add(QPair{P: p, A: at.Make(a1)}) {
		t.Fatal("weaker set must be admitted")
	}
	// The stronger one is now subsumed.
	if s.Add(QPair{P: p, A: at.Make(a1, a2)}) {
		t.Fatal("stronger set must be subsumed")
	}
	if got := len(s.Sets(p)); got != 1 {
		t.Fatalf("antichain size %d, want 1", got)
	}
	// An incomparable set coexists.
	if !s.Add(QPair{P: p, A: at.Make(a2)}) {
		t.Fatal("incomparable set must be admitted")
	}
	if got := len(s.Sets(p)); got != 2 {
		t.Fatalf("antichain size %d, want 2", got)
	}
	// The empty set swallows everything.
	if !s.Add(QPair{P: p, A: at.EmptySet()}) {
		t.Fatal("empty set must be admitted")
	}
	if got := len(s.Sets(p)); got != 1 {
		t.Fatalf("antichain size %d after empty, want 1", got)
	}
	if s.PairCount() != 1 || s.Len() != 1 {
		t.Fatalf("counts: %d pairs, %d qpairs", s.PairCount(), s.Len())
	}
}

// Property: a QSet's per-pair assumption sets always form an antichain
// (no element is a subset of another).
func TestQuickQSetAntichain(t *testing.T) {
	_, pool := pairUniverse()
	at := NewATable()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := &QSet{}
		for i := 0; i < int(n); i++ {
			var elems []Assumption
			for j := 0; j < r.Intn(4); j++ {
				elems = append(elems, Assumption{Formal: fakeFormals[r.Intn(3)], P: pool[r.Intn(6)]})
			}
			s.Add(QPair{P: pool[r.Intn(3)], A: at.Make(elems...)})
		}
		for _, p := range s.Pairs() {
			sets := s.Sets(p)
			for i := range sets {
				for j := range sets {
					if i != j && sets[i].SubsetOf(sets[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: QSet.Add is sound — after any sequence of adds, every added
// pair either appears directly or is covered by a weaker assumption set.
func TestQuickQSetCoverage(t *testing.T) {
	_, pool := pairUniverse()
	at := NewATable()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := &QSet{}
		var added []QPair
		for i := 0; i < int(n); i++ {
			var elems []Assumption
			for j := 0; j < r.Intn(3); j++ {
				elems = append(elems, Assumption{Formal: fakeFormals[r.Intn(3)], P: pool[r.Intn(6)]})
			}
			q := QPair{P: pool[r.Intn(3)], A: at.Make(elems...)}
			s.Add(q)
			added = append(added, q)
		}
		for _, q := range added {
			covered := false
			for _, a := range s.Sets(q.P) {
				if a.SubsetOf(q.A) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
