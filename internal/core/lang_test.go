package core_test

// Language-feature coverage: every construct of the mini-C subset driven
// end to end through the pipeline and the context-insensitive analysis,
// with assertions about the points-to outcome.

import (
	"sort"
	"strings"
	"testing"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/vdg"
)

// finalRefs returns base -> sorted referent names in main's return store.
func finalRefs(t *testing.T, u *driver.Unit, res *core.Result) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	ret := u.Graph.Entry.ReturnStore()
	if ret == nil {
		t.Fatal("no return store")
	}
	for _, p := range res.Pairs(ret).List() {
		out[p.Path.String()] = append(out[p.Path.String()], p.Ref.String())
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

func analyzeSrc(t *testing.T, src string) (*driver.Unit, *core.Result) {
	t.Helper()
	u := load(t, src)
	return u, core.AnalyzeInsensitive(u.Graph)
}

func expectRefs(t *testing.T, refs map[string][]string, path, want string) {
	t.Helper()
	if got := strings.Join(refs[path], ","); got != want {
		t.Errorf("%s -> %q, want %q (all: %v)", path, got, want, refs)
	}
}

func TestTernaryMergesPointers(t *testing.T) {
	u, res := analyzeSrc(t, `
int a, b;
int *p;
int main(void) {
	int c;
	c = 1;
	p = c ? &a : &b;
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "a,b")
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right operand of && executes conditionally; its assignment
	// must be merged, not treated as unconditional (soundness of strong
	// updates).
	u, res := analyzeSrc(t, `
int a, b;
int *p;
int main(void) {
	int c;
	c = 0;
	p = &a;
	(c && (p = &b));
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "a,b")
}

func TestCommaOperator(t *testing.T) {
	u, res := analyzeSrc(t, `
int a, b;
int *p, *q;
int main(void) {
	p = (q = &a, &b);
	return 0;
}
`)
	refs := finalRefs(t, u, res)
	expectRefs(t, refs, "p", "b")
	expectRefs(t, refs, "q", "a")
}

func TestSwitchFallthroughMerges(t *testing.T) {
	u, res := analyzeSrc(t, `
int a, b, c;
int *p;
int main(void) {
	int k;
	k = 1;
	switch (k) {
	case 0:
		p = &a;
		/* falls through */
	case 1:
		p = &b;
		break;
	default:
		p = &c;
	}
	return 0;
}
`)
	// All cases assign; fallthrough from 0 lands in 1 which reassigns, a
	// strong update. Exit merges {b} (cases 0,1) with {c} (default).
	expectRefs(t, finalRefs(t, u, res), "p", "b,c")
}

func TestSwitchWithoutDefaultKeepsEntryState(t *testing.T) {
	u, res := analyzeSrc(t, `
int a, b;
int *p;
int main(void) {
	int k;
	k = 9;
	p = &a;
	switch (k) {
	case 0:
		p = &b;
		break;
	}
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "a,b")
}

func TestDoWhileBody(t *testing.T) {
	u, res := analyzeSrc(t, `
int a;
int *p;
int main(void) {
	int i;
	i = 0;
	do {
		p = &a;
		i++;
	} while (i < 3);
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "a")
}

func TestPointerArithmeticStaysInArray(t *testing.T) {
	u, res := analyzeSrc(t, `
int arr[10];
int *p;
int main(void) {
	p = arr + 3;
	p++;
	p += 2;
	return *p;
}
`)
	// Every arithmetic form keeps the array referent.
	expectRefs(t, finalRefs(t, u, res), "p", "arr")
}

func TestAddressOfArrayElement(t *testing.T) {
	u, res := analyzeSrc(t, `
int arr[10];
int *p;
int main(void) {
	p = &arr[4];
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "arr[*]")
}

func TestTwoDimensionalArrays(t *testing.T) {
	u, res := analyzeSrc(t, `
int m[3][4];
int *p;
int main(void) {
	m[1][2] = 7;
	p = &m[0][0];
	return m[1][2] + *p;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "m[*][*]")
}

func TestNestedStructsAndArrows(t *testing.T) {
	u, res := analyzeSrc(t, `
struct inner { int *ptr; };
struct outer { struct inner in; struct outer *next; };
int g;
struct outer o1, o2;
int main(void) {
	o1.next = &o2;
	o1.next->in.ptr = &g;
	return 0;
}
`)
	refs := finalRefs(t, u, res)
	expectRefs(t, refs, "o1.next", "o2")
	expectRefs(t, refs, "o2.in.ptr", "g")
}

func TestStructAssignmentCopiesPointers(t *testing.T) {
	u, res := analyzeSrc(t, `
struct pack { int *a; int *b; };
int x, y;
struct pack src, dst;
int main(void) {
	src.a = &x;
	src.b = &y;
	dst = src;
	return 0;
}
`)
	refs := finalRefs(t, u, res)
	expectRefs(t, refs, "dst.a", "x")
	expectRefs(t, refs, "dst.b", "y")
}

func TestStructReturnByValue(t *testing.T) {
	u, res := analyzeSrc(t, `
struct pair { int *fst; int *snd; };
int x, y;
int *p;
struct pair mk(void) {
	struct pair v;
	v.fst = &x;
	v.snd = &y;
	return v;
}
int main(void) {
	p = mk().snd;
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "y")
}

func TestStructParamByValueIsolation(t *testing.T) {
	// Mutating a by-value struct parameter must not affect the caller's
	// copy.
	u, res := analyzeSrc(t, `
struct box { int *p; };
int x, y;
struct box gb;
void mutate(struct box b) {
	b.p = &y;
}
int main(void) {
	gb.p = &x;
	mutate(gb);
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "gb.p", "x")
}

func TestReallocKeepsBothPossibilities(t *testing.T) {
	u, res := analyzeSrc(t, `
int main(void) {
	int *p;
	int *q;
	p = (int *) malloc(8);
	q = (int *) realloc(p, 16);
	return *q;
}
`)
	// q may be the original block or the realloc site's fresh one.
	var qRefs []string
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KLookup && n.Indirect {
				for _, r := range res.LocReferents(n) {
					qRefs = append(qRefs, r.String())
				}
			}
		}
	}
	sort.Strings(qRefs)
	if len(qRefs) != 2 || !strings.HasPrefix(qRefs[0], "malloc@") || !strings.HasPrefix(qRefs[1], "realloc@") {
		t.Fatalf("q dereferences %v, want the malloc and realloc sites", qRefs)
	}
}

func TestStringLiteralStorage(t *testing.T) {
	u, res := analyzeSrc(t, `
char *msg;
int main(void) {
	msg = "hello";
	return 0;
}
`)
	refs := finalRefs(t, u, res)
	got := strings.Join(refs["msg"], ",")
	if !strings.HasPrefix(got, "str@") {
		t.Fatalf("msg -> %q, want string-literal storage", got)
	}
}

func TestStrcpyAliasesDestination(t *testing.T) {
	u, res := analyzeSrc(t, `
char buf[16];
char *r;
int main(void) {
	r = strcpy(buf, "x");
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "r", "buf")
}

func TestFunctionPointerTable(t *testing.T) {
	u, res := analyzeSrc(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int (*ops[2])(int) = {inc, dec};
int main(void) {
	return ops[0](3) + ops[1](3);
}
`)
	// Both table calls may reach both functions (one merged element).
	for _, fg := range u.Graph.Funcs {
		for _, call := range fg.Calls {
			names := calleeNames(res.Callees[call])
			sort.Strings(names)
			if strings.Join(names, ",") != "dec,inc" {
				t.Fatalf("table call resolves to %v", names)
			}
		}
	}
}

func TestFunctionPointerParameter(t *testing.T) {
	u, res := analyzeSrc(t, `
int g;
void setg(int v) { g = v; }
void apply(void (*f)(int), int v) { f(v); }
int main(void) {
	apply(setg, 4);
	apply(&setg, 5);
	return g;
}
`)
	found := false
	for _, fg := range u.Graph.Funcs {
		if fg.Fn.Name != "apply" {
			continue
		}
		for _, call := range fg.Calls {
			found = true
			if names := calleeNames(res.Callees[call]); len(names) != 1 || names[0] != "setg" {
				t.Fatalf("apply's call resolves to %v", names)
			}
		}
	}
	if !found {
		t.Fatal("no call found in apply")
	}
}

func TestNullGuardedDeref(t *testing.T) {
	u, res := analyzeSrc(t, `
int main(void) {
	int *p;
	p = 0;
	if (p != 0) {
		return *p;
	}
	return 0;
}
`)
	// The guarded read references no location (the paper's footnote on
	// backprop/bc reads that would reference only the null value).
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KLookup && n.Indirect {
				if refs := res.LocReferents(n); len(refs) != 0 {
					t.Fatalf("null-only read references %v", refs)
				}
			}
		}
	}
}

func TestGlobalInitializerChains(t *testing.T) {
	u, res := analyzeSrc(t, `
int x;
int *p = &x;
int **pp = &p;
char *names[2] = {"a", "b"};
int main(void) {
	return **pp;
}
`)
	refs := finalRefs(t, u, res)
	expectRefs(t, refs, "p", "x")
	expectRefs(t, refs, "pp", "p")
	if got := refs["names[*]"]; len(got) != 2 {
		t.Fatalf("names[*] -> %v, want two literals", got)
	}
}

func TestStaticLocalPersists(t *testing.T) {
	u, res := analyzeSrc(t, `
int a;
int *remember(int *v) {
	static int *saved = 0;
	if (v != 0) saved = v;
	return saved;
}
int *r;
int main(void) {
	remember(&a);
	r = remember(0);
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "r", "a")
}

func TestEnumAndSizeofAreScalars(t *testing.T) {
	_, res := analyzeSrc(t, `
enum { SZ = 8 };
int main(void) {
	long n;
	n = SZ + (long) sizeof(int);
	return (int) n;
}
`)
	if res.Metrics.Pairs != 0 {
		t.Fatalf("pure scalar program produced %d pairs", res.Metrics.Pairs)
	}
}

func TestVoidPointerLaundering(t *testing.T) {
	u, res := analyzeSrc(t, `
int a;
void *vp;
int *ip;
int main(void) {
	vp = (void *) &a;
	ip = (int *) vp;
	return *ip;
}
`)
	refs := finalRefs(t, u, res)
	expectRefs(t, refs, "vp", "a")
	expectRefs(t, refs, "ip", "a")
}

func TestTypedefsAreTransparent(t *testing.T) {
	u, res := analyzeSrc(t, `
typedef struct node { struct node *next; } Node;
typedef Node *NodePtr;
Node a, b;
NodePtr head;
int main(void) {
	head = &a;
	head->next = &b;
	return 0;
}
`)
	refs := finalRefs(t, u, res)
	expectRefs(t, refs, "head", "a")
	expectRefs(t, refs, "a.next", "b")
}

func TestBreakAndContinueStates(t *testing.T) {
	u, res := analyzeSrc(t, `
int a, b, c;
int *p;
int main(void) {
	int i;
	p = &a;
	for (i = 0; i < 10; i++) {
		if (i == 3) {
			p = &b;
			break;
		}
		if (i == 2) {
			continue;
		}
		p = &c;
	}
	return 0;
}
`)
	expectRefs(t, finalRefs(t, u, res), "p", "a,b,c")
}
