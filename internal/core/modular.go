package core

import (
	"context"

	"aliaslab/internal/limits"
	"aliaslab/internal/obs"
	"aliaslab/internal/paths"
	"aliaslab/internal/sched"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// This file implements AnalyzeModular: the context-insensitive solve
// restructured as a composition of per-procedure regions, so that
// procedure results can be cached (keyed by body hash + formal inputs),
// reused incrementally across edits, and solved in parallel at
// per-procedure grain. The transfer semantics are the shared ciHost
// layer in transfer.go — identical to the whole-program solver — which
// is why the result sets are provably the same fixpoint (the oracle
// asserts it corpus-wide and over generated populations).
//
// Architecture (DESIGN.md §14 has the full treatment):
//
//   - Every function is a *region* holding its own pair sets and its
//     own solver engine. VDG edges are intra-procedural, so a region's
//     transfer functions read only region-local state; every
//     inter-procedural emission (actuals/store to callee formals,
//     returns to caller call outputs) is buffered.
//
//   - Solving proceeds in rounds. Within a round, dirty regions drain
//     their worklists in parallel on a sched.Pool (per-procedure
//     grain); at the round barrier — single-threaded — buffered cross
//     emissions are applied in region index order, and discovered call
//     edges are registered with the shared repropagation rules.
//
//   - Each region accumulates its inter-procedural arrivals with set
//     semantics, split in two: *formal* arrivals (pairs landing on the
//     store formal or a parameter formal, emitted by callers) and the
//     rest (callee returns landing on call outputs). At convergence
//     both are pure functions of the final solution — independent of
//     worklist strategy, worker width, and round schedule.
//
//   - A region whose body hash is known to the cache starts *delayed*:
//     arrivals buffer without solving. At a stall (no queued work
//     anywhere), a delayed region whose accumulated formal arrivals
//     match a cached record installs that record's final sets without
//     ever solving the body (a hit). The formal subset is the right
//     key half because it is grounded by callers; keying on the full
//     arrival set would deadlock — a caller cannot finish emitting
//     into a delayed callee without the callee's returns, which only
//     exist once the callee runs. The callee returns the record
//     presumed are checked afterwards (see validation). If formal
//     arrivals overshoot every cached record, the region activates
//     cold (a miss). If a stall finds nothing to install, the entry
//     region (then the SCC-topologically highest) is force-started;
//     roots therefore always re-solve, and their outputs ground their
//     callees' installs from above.
//
//   - Installed regions are *frozen*: later arrivals are recorded but
//     not solved. At convergence every installed region's full arrival
//     set is validated against its record (ModularCache.Confirm). A
//     mismatch means the cached result presumed inter-procedural
//     inputs this program no longer produces (or misses ones it now
//     does): the whole solve restarts with the mismatched regions
//     distrusted, so they re-solve cold. Validation plus restart is
//     what makes the optimistic install exact — a stale record can
//     cost a re-solve, never a wrong reuse.
type modularState int

const (
	regionDelayed   modularState = iota // trusted body, waiting to match a cached record
	regionActive                        // solving from scratch (cold)
	regionInstalled                     // cached record installed, body never solved
)

// Region outcome labels, as reported in ModularStats.Outcomes.
const (
	OutcomeHit    = "hit"    // cached record installed, body never solved
	OutcomeMiss   = "miss"   // solved cold (no cached record usable)
	OutcomeForced = "forced" // solved cold to break a delayed-region stall
)

// CrossArrival is one inter-procedural arrival: a pair emitted into a
// region at one of its interface outputs (a formal, the store formal,
// or a call node's store/result output).
type CrossArrival struct {
	Out  *vdg.Output
	Pair Pair
}

// Formal reports whether the arrival lands on a formal output (the
// store formal or a parameter) — the caller-grounded half of a
// region's inputs, and the half summaries are keyed by. The cache and
// the solver must agree on this split.
func (ca CrossArrival) Formal() bool {
	k := ca.Out.Node.Kind
	return k == vdg.KParam || k == vdg.KStoreParam
}

// OutputPairs is one output's pairs in a cached procedure record.
type OutputPairs struct {
	Out   *vdg.Output
	Pairs []Pair
}

// CallEdge is one cached call-graph edge local to a procedure.
type CallEdge struct {
	Call   *vdg.Node
	Callee *vdg.FuncGraph
}

// CachedProc is a cached per-procedure result, already rehydrated
// against the current graph and universe: the procedure's final pair
// sets (in a deterministic order) and the call edges its body
// discovered.
type CachedProc struct {
	Sets    []OutputPairs
	Callees []CallEdge
}

// ModularCache is the seam between the region solver and the summary
// store (internal/summary implements it; core stays free of the
// encoding). All methods are called from the single-threaded barrier
// and setup/finish phases only — implementations need a mutex only if
// one cache is shared across concurrent AnalyzeModular calls.
type ModularCache interface {
	// Trusted reports whether the cache holds records for fg's body
	// hash, returning the distinct *formal* arrival counts of those
	// records in ascending order. A region with no records solves
	// cold immediately.
	Trusted(fg *vdg.FuncGraph) (sizes []int, ok bool)

	// Lookup resolves the record whose formal arrivals equal the
	// formal subset of crossIn exactly, returning an opaque key
	// identifying that record. A failed match, or a record that no
	// longer rehydrates against this graph (a base, function, or node
	// that stopped existing), returns ok=false.
	Lookup(fg *vdg.FuncGraph, crossIn []CrossArrival) (proc CachedProc, key string, ok bool)

	// Confirm reports whether the record installed under key is the
	// exact answer for the converged arrival set: crossIn's formal
	// subset must still resolve to that same record (an install that
	// matched a partial formal set — possible when structurally
	// identical bodies share records — fails here), and the record's
	// complete arrival set, the callee returns it presumed included,
	// must equal crossIn exactly. Called at convergence for every
	// installed region; false invalidates the install and restarts
	// the solve.
	Confirm(fg *vdg.FuncGraph, key string, crossIn []CrossArrival) bool

	// Store records a fully converged region: its complete arrival
	// set, final sets, and the call edges of its body (callees holds
	// the whole-program edge map; implementations index it by
	// fg.Calls).
	Store(fg *vdg.FuncGraph, crossIn []CrossArrival, sets map[*vdg.Output]*PairSet, callees map[*vdg.Node][]*vdg.FuncGraph)
}

// GraphSession is an optional ModularCache extension. When the cache
// implements it, AnalyzeModular brackets the whole solve (restarts
// included) with BeginGraph/end, letting the cache build per-graph
// hydration state — base and function resolution tables — once instead
// of once per procedure lookup. The returned func must be called
// exactly once, after the last cache call for this graph.
type GraphSession interface {
	BeginGraph(g *vdg.Graph) (end func())
}

// ModularOptions configures AnalyzeModular.
type ModularOptions struct {
	// Budget bounds the whole solve; step/pair caps are pooled across
	// all regions (and restarts) through a shared ledger.
	Budget limits.Budget

	// Strategy is the per-region worklist discipline (zero: FIFO).
	Strategy solver.Strategy

	// Cache is the summary store; nil solves every region cold.
	Cache ModularCache

	// Jobs bounds regions drained concurrently per round
	// (0 = GOMAXPROCS, 1 = sequential; results and all ModularStats
	// counters are identical at every width).
	Jobs int

	// Metrics, when non-nil, receives the summary.* counters.
	Metrics *obs.Registry
}

// ModularStats reports what the region solver did. All counts are
// deterministic: identical at every Jobs width and for every worklist
// strategy (regions run to local quiescence between barriers, so
// per-round cross-emission sets are schedule-independent, and
// installs happen only at stalls, which are schedule-independent
// states).
type ModularStats struct {
	// Procedures is the region count (len of g.Funcs).
	Procedures int
	// Rounds counts drain/barrier rounds until convergence, summed
	// over restarts.
	Rounds int

	// Hits counts regions answered entirely from cache in the final
	// attempt (their bodies were never solved). Misses counts regions
	// solved cold because no cached record matched; Forced counts
	// regions solved cold to break a stall (always ≥1 on a non-empty
	// program: the entry region has no callers to ground an install,
	// so it always re-solves).
	Hits, Misses, Forced int

	// Restarts counts validation-failure restarts; Invalidated counts
	// installed records rejected across them.
	Restarts, Invalidated int

	// Outcomes maps function name → outcome label (OutcomeHit,
	// OutcomeMiss, OutcomeForced) for the final attempt.
	Outcomes map[string]string
}

// Reused reports how many procedures were answered from cache without
// solving their bodies.
func (s ModularStats) Reused() int { return s.Hits }

// crossKey identifies one arrival for crossIn set semantics.
type crossKey struct {
	out, path, ref int
}

// edgeEvent is a call edge discovered during a drain, deferred to the
// barrier (registering it reads the callee's state).
type edgeEvent struct {
	call   *vdg.Node
	callee *vdg.FuncGraph
}

// region is one procedure's solver state.
type region struct {
	m     *modular
	idx   int
	topo  int // SCC-condensation order of the static call graph; callers first
	fg    *vdg.FuncGraph
	state modularState

	eng   *solver.Engine[workItem]
	st    *solver.Stats
	sets  map[*vdg.Output]*PairSet
	dirty bool

	// crossSeen/crossIn accumulate the region's inter-procedural
	// arrivals with set semantics; formals counts the formal-output
	// subset (the cache key half); pending buffers arrivals for
	// replay while the region is delayed.
	crossSeen map[crossKey]struct{}
	crossIn   []CrossArrival
	formals   int
	pending   []CrossArrival

	// outCross/outEdges buffer this round's emissions for the barrier.
	outCross []CrossArrival
	outEdges []edgeEvent

	sizes      []int // cached formal-arrival counts (ascending) when trusted
	maxSize    int
	lastLookup int    // formal count at the last failed Lookup; -1 if none
	installKey string // cache key of the installed record (for Confirm)
	outcome    string

	stoppedV *limits.Violation
}

// ciHost implementation for the drain phase: reads are region-local by
// construction (VDG edges are intra-procedural), emissions crossing
// the region boundary are buffered, and call edges defer to the
// barrier.

func (r *region) universe() *paths.Universe { return r.m.g.Universe }

func (r *region) pairsAt(src *vdg.Output) []Pair {
	if s, ok := r.sets[src]; ok {
		return s.List()
	}
	return nil
}

func (r *region) emit(out *vdg.Output, pair Pair) {
	if r.m.ridx[out.Node.Fn] == r.idx {
		r.flowOut(out, pair)
		return
	}
	r.outCross = append(r.outCross, CrossArrival{Out: out, Pair: pair})
}

func (r *region) calleesOf(n *vdg.Node) []*vdg.FuncGraph { return r.m.callees[n] }

func (r *region) callersOf(fg *vdg.FuncGraph) []*vdg.Node { return r.m.callers[fg] }

func (r *region) linkEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range r.m.callees[n] { // read-only during the round
		if c == callee {
			return
		}
	}
	r.outEdges = append(r.outEdges, edgeEvent{call: n, callee: callee})
}

// flowOut is the region-local meet: add pair to out's set, queue the
// (local) consumers on growth. Never called on a frozen (installed)
// region — applyCross guards, and installed engines hold no work.
func (r *region) flowOut(out *vdg.Output, pair Pair) {
	r.st.Meets++
	s, ok := r.sets[out]
	if !ok {
		s = &PairSet{}
		r.sets[out] = s
	}
	if !s.Add(pair) {
		return
	}
	r.st.PairInserts++
	for _, in := range out.Consumers {
		r.eng.Push(workItem{in: in, pair: pair})
		r.dirty = true
	}
}

// seed plants the base-location constants of the region's body.
func (r *region) seed() {
	empty := r.m.g.Universe.Empty()
	for _, n := range r.fg.Nodes {
		if n.Kind == vdg.KAddr || n.Kind == vdg.KAlloc {
			r.flowOut(n.Outputs[0], Pair{Path: empty, Ref: n.Path})
		}
	}
}

// modular is the state of one solve attempt.
type modular struct {
	g        *vdg.Graph
	regions  []*region
	ridx     map[*vdg.FuncGraph]int
	callees  map[*vdg.Node][]*vdg.FuncGraph
	callers  map[*vdg.FuncGraph][]*vdg.Node
	cache    ModularCache
	distrust map[*vdg.FuncGraph]bool
	budget   limits.Budget
	strategy solver.Strategy
	jobs     int
	reg      *obs.Registry
	stats    ModularStats
	stopped  *limits.Violation
}

// edgeHost is the barrier-phase ciHost used to repropagate a call
// edge: reads resolve against the owning region, emissions route
// through applyCross with the correct source attribution (every
// emission of a call edge targets one of its two endpoints).
type edgeHost struct {
	m              *modular
	caller, callee int
}

func (h edgeHost) universe() *paths.Universe { return h.m.g.Universe }

func (h edgeHost) pairsAt(src *vdg.Output) []Pair {
	r := h.m.regions[h.m.ridx[src.Node.Fn]]
	if s, ok := r.sets[src]; ok {
		return s.List()
	}
	return nil
}

func (h edgeHost) emit(out *vdg.Output, pair Pair) {
	src := h.caller
	if h.m.ridx[out.Node.Fn] == h.caller {
		src = h.callee
	}
	h.m.applyCross(src, out, pair)
}

func (h edgeHost) calleesOf(n *vdg.Node) []*vdg.FuncGraph { return h.m.callees[n] }

func (h edgeHost) callersOf(fg *vdg.FuncGraph) []*vdg.Node { return h.m.callers[fg] }

func (h edgeHost) linkEdge(n *vdg.Node, callee *vdg.FuncGraph) { h.m.applyEdge(n, callee) }

// AnalyzeModular runs the context-insensitive analysis as a summary
// composition over per-procedure regions. The returned sets are the
// same fixpoint AnalyzeInsensitive computes (oracle-enforced); the
// stats report how much of it came from the cache.
func AnalyzeModular(g *vdg.Graph, opts ModularOptions) (*Result, ModularStats) {
	budget := opts.Budget
	if (budget.MaxSteps > 0 || budget.MaxPairs > 0) && budget.Ledger == nil {
		// Pool the step/pair caps across all region engines (and
		// across restarts); without a shared ledger each engine would
		// get the full cap to itself.
		budget = budget.Share(&limits.Ledger{})
	}
	// Region drains run in parallel and extend the shared path
	// universe; arm its interning lock.
	g.Universe.Concurrent()

	if s, ok := opts.Cache.(GraphSession); ok {
		end := s.BeginGraph(g)
		defer end()
	}

	distrust := make(map[*vdg.FuncGraph]bool)
	restarts, invalidated, rounds := 0, 0, 0
	for {
		m := newModular(g, opts, budget, distrust)
		m.solve()
		m.stats.Restarts = restarts
		m.stats.Invalidated = invalidated
		m.stats.Rounds += rounds
		if m.stopped != nil {
			return m.finish()
		}
		bad := m.validate()
		if len(bad) == 0 {
			return m.finish()
		}
		for _, fg := range bad {
			distrust[fg] = true
		}
		restarts++
		invalidated += len(bad)
		rounds = m.stats.Rounds
	}
}

// newModular builds one solve attempt over g.
func newModular(g *vdg.Graph, opts ModularOptions, budget limits.Budget, distrust map[*vdg.FuncGraph]bool) *modular {
	m := &modular{
		g:        g,
		ridx:     make(map[*vdg.FuncGraph]int, len(g.Funcs)),
		callees:  make(map[*vdg.Node][]*vdg.FuncGraph),
		callers:  make(map[*vdg.FuncGraph][]*vdg.Node),
		cache:    opts.Cache,
		distrust: distrust,
		budget:   budget,
		strategy: opts.Strategy,
		jobs:     opts.Jobs,
		reg:      opts.Metrics,
	}
	m.stats.Procedures = len(g.Funcs)
	m.stats.Outcomes = make(map[string]string, len(g.Funcs))

	cfg := engineConfig(g, opts.Strategy, budget, 0, func(it workItem) *vdg.Input { return it.in })
	for i, fg := range g.Funcs {
		r := &region{
			m:          m,
			idx:        i,
			fg:         fg,
			sets:       make(map[*vdg.Output]*PairSet),
			crossSeen:  make(map[crossKey]struct{}),
			eng:        solver.New(cfg),
			lastLookup: -1,
		}
		r.st = r.eng.Stats()
		m.ridx[fg] = i
		m.regions = append(m.regions, r)
	}
	m.assignTopo()

	for _, r := range m.regions {
		var sizes []int
		trusted := false
		if m.cache != nil && !m.distrust[r.fg] {
			sizes, trusted = m.cache.Trusted(r.fg)
		}
		if trusted && len(sizes) > 0 {
			r.state = regionDelayed
			r.sizes = sizes
			r.maxSize = sizes[len(sizes)-1]
		} else {
			m.activate(r, OutcomeMiss)
		}
	}
	return m
}

// solve runs rounds to convergence: drain dirty regions, apply the
// barrier, and at stalls try installs before force-starting.
func (m *modular) solve() {
	for m.stopped == nil {
		if act := m.dirtyRegions(); len(act) > 0 {
			m.stats.Rounds++
			if !m.drain(act) {
				return
			}
			m.applyBuffers()
			continue
		}
		if m.resolveDelayed() {
			continue
		}
		if !m.forceStart() {
			return // converged
		}
	}
}

// validate checks every installed region's complete arrival set
// against its record, returning the mismatches.
func (m *modular) validate() []*vdg.FuncGraph {
	var bad []*vdg.FuncGraph
	for _, r := range m.regions {
		if r.state != regionInstalled {
			continue
		}
		if !m.cache.Confirm(r.fg, r.installKey, r.crossIn) {
			bad = append(bad, r.fg)
		}
	}
	return bad
}

// assignTopo orders regions by the SCC condensation of the static call
// graph (an over-approximation: fg references fg' when its body takes
// the address of fg'). Callers get smaller numbers than their callees,
// so force-starts run top-down and feed delayed callees their inputs.
func (m *modular) assignTopo() {
	n := len(m.regions)
	adj := make([][]int, n)
	for i, r := range m.regions {
		seen := make(map[int]bool)
		for _, nd := range r.fg.Nodes {
			if nd.Kind != vdg.KAddr || nd.Path == nil {
				continue
			}
			b := nd.Path.Base()
			if b == nil || b.Kind != paths.FuncBase {
				continue
			}
			callee := m.g.FuncByBase[b]
			if callee == nil {
				continue
			}
			j := m.ridx[callee]
			if !seen[j] {
				seen[j] = true
				adj[i] = append(adj[i], j)
			}
		}
	}

	// Tarjan; SCCs are emitted callees-first, so the k-th emitted SCC
	// gets topo order (#sccs - 1 - k).
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	sccOf := make([]int, n)
	for i := range index {
		index[i] = -1
		sccOf[i] = -1
	}
	var stack []int
	next, sccs := 0, 0
	var strong func(v int)
	strong = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = sccs
				if w == v {
					break
				}
			}
			sccs++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
	for i, r := range m.regions {
		r.topo = sccs - 1 - sccOf[i]
	}
}

// dirtyRegions returns the regions with queued work, in index order.
func (m *modular) dirtyRegions() []*region {
	var act []*region
	for _, r := range m.regions {
		if r.dirty {
			act = append(act, r)
		}
	}
	return act
}

// drain runs one round: every dirty region drains its worklist to
// local quiescence, in parallel at per-procedure grain. Returns false
// when a budget violation stopped the round.
func (m *modular) drain(act []*region) bool {
	pool := sched.Pool{Jobs: m.jobs, Obs: m.reg}
	errs := pool.Map(m.budget.Ctx, len(act), func(_ context.Context, i int) error {
		r := act[i]
		out := r.eng.Run(func(it workItem) { ciFlowIn(r, it.in, it.pair) })
		r.dirty = false
		r.stoppedV = out.Stopped
		return nil
	})
	for _, r := range act {
		if r.stoppedV != nil {
			m.stopped = r.stoppedV
			break
		}
	}
	if m.stopped == nil {
		for _, err := range errs {
			if err == nil {
				continue
			}
			if se, ok := sched.Skipped(err); ok {
				m.stopped = &limits.Violation{Reason: limits.Deadline, Err: se.Cause}
				continue
			}
			panic(err) // a guarded region panic; rethrow for the caller's Guard
		}
	}
	return m.stopped == nil
}

// applyBuffers is the round barrier: buffered cross emissions and call
// edges are applied single-threaded, in region index order.
func (m *modular) applyBuffers() {
	for _, r := range m.regions {
		cross, edges := r.outCross, r.outEdges
		r.outCross, r.outEdges = nil, nil
		for _, ca := range cross {
			m.applyCross(r.idx, ca.Out, ca.Pair)
		}
		for _, e := range edges {
			m.applyEdge(e.call, e.callee)
		}
	}
}

// applyCross delivers one inter-region arrival: recorded into the
// target's arrival set (only genuinely external arrivals count —
// self-recursive flows are intra-region), then buffered (delayed
// target), dropped (frozen installed target — the record already
// accounts for it, and validation checks that), or met into the
// target's sets.
func (m *modular) applyCross(src int, out *vdg.Output, pair Pair) {
	r := m.regions[m.ridx[out.Node.Fn]]
	if src != r.idx {
		k := crossKey{out: out.ID, path: pair.Path.ID(), ref: pair.Ref.ID()}
		if _, dup := r.crossSeen[k]; !dup {
			r.crossSeen[k] = struct{}{}
			ca := CrossArrival{Out: out, Pair: pair}
			r.crossIn = append(r.crossIn, ca)
			if ca.Formal() {
				r.formals++
			}
			if r.state == regionDelayed {
				r.pending = append(r.pending, ca)
			}
		}
	}
	if r.state != regionActive {
		return
	}
	r.flowOut(out, pair)
}

// applyEdge registers call → callee (dedup'd) and repropagates both
// directions through the shared rules.
func (m *modular) applyEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range m.callees[n] {
		if c == callee {
			return
		}
	}
	m.callees[n] = append(m.callees[n], callee)
	m.callers[callee] = append(m.callers[callee], n)
	ciApplyCallEdge(edgeHost{m: m, caller: m.ridx[n.Fn], callee: m.ridx[callee]}, n, callee)
}

// resolveDelayed runs the install cascade at a stall: delayed regions
// whose formal arrivals match a cached record install; regions whose
// formal arrivals overshoot every record activate cold. Installs
// emit, so the cascade loops to a fixed point. Reports whether
// anything changed state.
func (m *modular) resolveDelayed() bool {
	any := false
	for changed := true; changed; {
		changed = false
		for _, r := range m.regions {
			if r.state != regionDelayed {
				continue
			}
			sizeMatch := false
			for _, s := range r.sizes {
				if s == r.formals {
					sizeMatch = true
					break
				}
			}
			if sizeMatch && r.formals != r.lastLookup {
				if rec, key, ok := m.cache.Lookup(r.fg, r.crossIn); ok {
					m.install(r, rec, key)
					changed, any = true, true
					continue
				}
				r.lastLookup = r.formals // retry only once more arrivals land
			}
			if r.formals >= r.maxSize {
				m.activate(r, OutcomeMiss)
				changed, any = true, true
			}
		}
	}
	return any
}

// install populates a delayed region from a cached record: its final
// sets land without solving, its cached call edges re-register (which
// re-emits the forward flows from the installed sets), and its return
// flows are synthesized toward already-registered callers. The region
// is frozen from here on; validation settles whether the callee
// returns the record presumed actually materialize.
func (m *modular) install(r *region, rec CachedProc, key string) {
	r.state = regionInstalled
	r.installKey = key
	r.pending = nil
	m.stats.Hits++
	for _, op := range rec.Sets {
		s := &PairSet{}
		for _, p := range op.Pairs {
			s.Add(p)
		}
		r.sets[op.Out] = s
	}
	for _, e := range rec.Callees {
		m.applyEdge(e.Call, e.Callee)
	}
	m.emitReturns(r)
}

// emitReturns synthesizes the region's return flows to its currently
// registered callers (callers registered later pull them through
// applyEdge's backward direction).
func (m *modular) emitReturns(r *region) {
	callers := m.callers[r.fg]
	if len(callers) == 0 {
		return
	}
	var storePairs, valPairs []Pair
	if rs := r.fg.ReturnStore(); rs != nil {
		if s, ok := r.sets[rs]; ok {
			storePairs = s.List()
		}
	}
	if rv := r.fg.ReturnValue(); rv != nil {
		if s, ok := r.sets[rv]; ok {
			valPairs = s.List()
		}
	}
	for _, c := range callers {
		for _, p := range storePairs {
			m.applyCross(r.idx, vdg.CallStoreOut(c), p)
		}
		if res := vdg.CallResultOut(c); res != nil {
			for _, p := range valPairs {
				m.applyCross(r.idx, res, p)
			}
		}
	}
}

// activate starts a region cold: seeds, then replays the arrivals
// that buffered while it was delayed.
func (m *modular) activate(r *region, outcome string) {
	r.state = regionActive
	r.outcome = outcome
	if outcome == OutcomeForced {
		m.stats.Forced++
	} else {
		m.stats.Misses++
	}
	r.seed()
	pend := r.pending
	r.pending = nil
	for _, ca := range pend {
		r.flowOut(ca.Out, ca.Pair)
	}
}

// forceStart breaks a stall: with no queued work anywhere and nothing
// installable, some delayed region's inputs can only be completed
// from above — start one cold. The entry region first (it has no
// callers, so nothing grounds an install for it), then top-down by
// SCC order so forced solves feed the regions below them.
func (m *modular) forceStart() bool {
	var pick *region
	for _, r := range m.regions {
		if r.state != regionDelayed {
			continue
		}
		if r.fg == m.g.Entry {
			pick = r
			break
		}
		if pick == nil || r.topo < pick.topo || (r.topo == pick.topo && r.idx < pick.idx) {
			pick = r
		}
	}
	if pick == nil {
		return false
	}
	m.activate(pick, OutcomeForced)
	return true
}

// finish assembles the Result, stores converged regions into the
// cache, and publishes the metrics.
func (m *modular) finish() (*Result, ModularStats) {
	res := &Result{
		Graph:   m.g,
		Sets:    make(map[*vdg.Output]*PairSet),
		Callees: m.callees,
		Callers: m.callers,
		Stopped: m.stopped,
	}
	var st solver.Stats
	st.Strategy = m.strategy
	for _, r := range m.regions {
		for out, s := range r.sets {
			if s.Len() > 0 {
				res.Sets[out] = s
			}
		}
		st.Steps += r.st.Steps
		st.Meets += r.st.Meets
		st.PairInserts += r.st.PairInserts
		st.SubsumeHits += r.st.SubsumeHits
		st.SubsumeDrops += r.st.SubsumeDrops
		st.Enqueued += r.st.Enqueued
		st.DepthSum += r.st.DepthSum
		if r.st.PeakDepth > st.PeakDepth {
			st.PeakDepth = r.st.PeakDepth
		}

		if r.state == regionInstalled {
			r.outcome = OutcomeHit
		}
		m.stats.Outcomes[r.fg.Fn.Name] = r.outcome
	}
	res.Engine = st
	res.Metrics = metricsFrom(&st)

	if m.stopped == nil && m.cache != nil {
		for _, r := range m.regions {
			if r.state == regionInstalled {
				continue // the identical record is already cached
			}
			m.cache.Store(r.fg, r.crossIn, r.sets, m.callees)
		}
	}

	// summary.* counters: deterministic at any Jobs width and under
	// every strategy (see ModularStats), so they are safe in the
	// byte-stable metrics snapshots.
	m.reg.Counter("summary.procedures", obs.Deterministic).Add(int64(m.stats.Procedures))
	m.reg.Counter("summary.rounds", obs.Deterministic).Add(int64(m.stats.Rounds))
	m.reg.Counter("summary.cache.hits", obs.Deterministic).Add(int64(m.stats.Hits))
	m.reg.Counter("summary.cache.misses", obs.Deterministic).Add(int64(m.stats.Misses))
	m.reg.Counter("summary.cache.forced", obs.Deterministic).Add(int64(m.stats.Forced))
	m.reg.Counter("summary.cache.invalidated", obs.Deterministic).Add(int64(m.stats.Invalidated))
	m.reg.Counter("summary.restarts", obs.Deterministic).Add(int64(m.stats.Restarts))

	return res, m.stats
}
