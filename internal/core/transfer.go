package core

import (
	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// ciHost is the slice of analysis state the context-insensitive
// transfer functions need. Two hosts implement it: the whole-program
// solver (insensitive), where every emission lands directly in the one
// global set map, and the per-procedure region solver behind
// AnalyzeModular, where emissions crossing a procedure boundary are
// buffered to the round barrier and call-graph edges are registered
// there. The transfer semantics below are shared verbatim — that is
// what makes "modular == exhaustive" a structural property rather than
// a re-implementation to keep in sync.
//
// The methods are deliberately minimal:
//
//   - pairsAt reads the current set on an output. Every read the
//     transfer functions perform is through an input of the node being
//     processed, and VDG edges are intra-procedural — so a region host
//     only ever reads its own state here.
//   - emit adds a pair to an output's set (a meet), queueing consumers
//     on growth. The target may be in another procedure (callee
//     formals, caller call outputs); routing is the host's business.
//   - linkEdge records a discovered call edge. The whole-program host
//     applies it immediately; the region host defers it to the barrier
//     because applying it reads the callee's state.
//
// The generic instantiation (rather than an interface value) lets the
// compiler devirtualize the hot path per host.
type ciHost interface {
	universe() *paths.Universe
	pairsAt(src *vdg.Output) []Pair
	emit(out *vdg.Output, pair Pair)
	calleesOf(n *vdg.Node) []*vdg.FuncGraph
	callersOf(fg *vdg.FuncGraph) []*vdg.Node
	linkEdge(n *vdg.Node, callee *vdg.FuncGraph)
}

// ciFlowIn implements the per-node transfer functions of [Ruf95,
// Figure 1]: one (input, pair) arrival against one node.
func ciFlowIn[H ciHost](h H, in *vdg.Input, pair Pair) {
	n := in.Node
	switch n.Kind {
	case vdg.KLookup:
		ciLookupFlow(h, n, in, pair)
	case vdg.KUpdate:
		ciUpdateFlow(h, n, in, pair)
	case vdg.KCall:
		ciCallFlow(h, n, in, pair)
	case vdg.KReturn:
		ciReturnFlow(h, n, in, pair)
	case vdg.KGamma:
		h.emit(n.Outputs[0], pair)
	case vdg.KPrimop:
		if n.Transparent {
			if n.Op == vdg.OpChecked && IsMarkerRef(pair.Ref) {
				// A null guard proved the value non-null on this branch:
				// the marker referents do not pass the check.
				return
			}
			h.emit(n.Outputs[0], pair)
		}
	case vdg.KAlloc:
		// realloc: the old block's pairs flow through.
		h.emit(n.Outputs[0], pair)
	case vdg.KFree:
		// Deallocation is identity on the store (the kill is interpreted
		// by the checkers, not the points-to domain — removing pairs
		// would be unsound under may-aliasing).
		if in.Index == 1 {
			h.emit(n.Outputs[0], pair)
		}
	case vdg.KFieldAddr:
		if pair.Path.IsEmptyOffset() {
			ref := ciExtendField(h, n, pair.Ref)
			h.emit(n.Outputs[0], Pair{Path: pair.Path, Ref: ref})
		}
	case vdg.KIndexAddr:
		if pair.Path.IsEmptyOffset() {
			h.emit(n.Outputs[0], Pair{Path: pair.Path, Ref: h.universe().Index(pair.Ref)})
		}
	case vdg.KExtract:
		want := paths.Op{Field: n.Field, Union: n.Transparent}
		if op, ok := pair.Path.FirstOp(); ok && op.Overlaps(want) {
			tail := h.universe().TailAfterFirst(pair.Path)
			h.emit(n.Outputs[0], Pair{Path: tail, Ref: pair.Ref})
		}
	}
}

// ciExtendField applies a member operator; union members use the
// overlapping operator (the builder marks union accesses on the node).
func ciExtendField[H ciHost](h H, n *vdg.Node, p *paths.Path) *paths.Path {
	if n.Transparent { // union member
		return h.universe().UnionField(p, n.Field)
	}
	return h.universe().Field(p, n.Field)
}

// ciLookupFlow: a new location dereferences every store pair it may
// observe; a new store pair is observed by every location.
func ciLookupFlow[H ciHost](h H, n *vdg.Node, in *vdg.Input, pair Pair) {
	u := h.universe()
	out := n.Outputs[0]
	switch in.Index {
	case 0: // location input
		if !pair.Path.IsEmptyOffset() {
			return
		}
		rl := pair.Ref
		for _, ps := range h.pairsAt(n.StoreIn()) {
			if paths.Dom(rl, ps.Path) {
				h.emit(out, Pair{Path: u.Subtract(ps.Path, rl), Ref: ps.Ref})
			}
		}
	case 1: // store input
		for _, pl := range h.pairsAt(n.Loc()) {
			if !pl.Path.IsEmptyOffset() {
				continue
			}
			if paths.Dom(pl.Ref, pair.Path) {
				h.emit(out, Pair{Path: u.Subtract(pair.Path, pl.Ref), Ref: pair.Ref})
			}
		}
	}
}

// ciUpdateFlow implements strong updates: a store pair passes through
// only via location referents that do not definitely overwrite it, and
// store pairs are blocked entirely until the first location arrives
// (the dual-worklist behaviour of [CWZ90]).
func ciUpdateFlow[H ciHost](h H, n *vdg.Node, in *vdg.Input, pair Pair) {
	u := h.universe()
	out := n.Outputs[0]
	switch in.Index {
	case 0: // location input
		if !pair.Path.IsEmptyOffset() {
			return
		}
		rl := pair.Ref
		for _, pv := range h.pairsAt(n.Value()) {
			h.emit(out, Pair{Path: u.Append(rl, pv.Path), Ref: pv.Ref})
		}
		for _, ps := range h.pairsAt(n.StoreIn()) {
			if !paths.StrongDom(rl, ps.Path) {
				h.emit(out, ps)
			}
		}
	case 1: // store input
		for _, pl := range h.pairsAt(n.Loc()) {
			if !pl.Path.IsEmptyOffset() {
				continue
			}
			if !paths.StrongDom(pl.Ref, pair.Path) {
				h.emit(out, pair)
			}
		}
	case 2: // value input
		for _, pl := range h.pairsAt(n.Loc()) {
			if !pl.Path.IsEmptyOffset() {
				continue
			}
			h.emit(out, Pair{Path: u.Append(pl.Ref, pair.Path), Ref: pair.Ref})
		}
	}
}

// ciCallFlow: actuals propagate to the formals of every callee; a new
// function value registers a call edge (the host decides when the
// edge's repropagation runs).
func ciCallFlow[H ciHost](h H, n *vdg.Node, in *vdg.Input, pair Pair) {
	switch in.Index {
	case 0: // function input
		if !pair.Path.IsEmptyOffset() {
			return
		}
		base := pair.Ref.Base()
		if base == nil || pair.Ref.Depth() != 0 {
			return
		}
		callee := n.Fn.Graph.FuncByBase[base]
		if callee == nil {
			return
		}
		h.linkEdge(n, callee)
	case 1: // store input
		for _, callee := range h.calleesOf(n) {
			h.emit(callee.StoreParam, pair)
		}
	default: // actuals
		argIdx := in.Index - 2
		for _, callee := range h.calleesOf(n) {
			if argIdx < len(callee.ParamOuts) {
				h.emit(callee.ParamOuts[argIdx], pair)
			}
		}
	}
}

// ciApplyCallEdge repropagates both directions of a freshly registered
// call → callee edge: existing actuals and store flow forward to the
// callee's formals, and the callee's existing returns flow back to this
// call site. The host must have recorded the edge in its callee/caller
// maps before calling this (so the emissions do not re-trigger it), and
// must guarantee both endpoints' sets are readable — the whole-program
// host always can; the region host calls this only at the round
// barrier.
func ciApplyCallEdge[H ciHost](h H, n *vdg.Node, callee *vdg.FuncGraph) {
	for _, pair := range h.pairsAt(n.StoreIn()) {
		h.emit(callee.StoreParam, pair)
	}
	for i, argIn := range vdg.CallArgs(n) {
		if i >= len(callee.ParamOuts) {
			break
		}
		for _, pair := range h.pairsAt(argIn.Src) {
			h.emit(callee.ParamOuts[i], pair)
		}
	}

	if rs := callee.ReturnStore(); rs != nil {
		for _, pair := range h.pairsAt(rs) {
			h.emit(vdg.CallStoreOut(n), pair)
		}
	}
	if rv := callee.ReturnValue(); rv != nil {
		if res := vdg.CallResultOut(n); res != nil {
			for _, pair := range h.pairsAt(rv) {
				h.emit(res, pair)
			}
		}
	}
}

// ciReturnFlow: values and stores reaching a function's return sink
// flow to the corresponding outputs at every call site.
func ciReturnFlow[H ciHost](h H, n *vdg.Node, in *vdg.Input, pair Pair) {
	fg := n.Fn
	switch in.Index {
	case 0: // store
		for _, call := range h.callersOf(fg) {
			h.emit(vdg.CallStoreOut(call), pair)
		}
	case 1: // value
		for _, call := range h.callersOf(fg) {
			if res := vdg.CallResultOut(call); res != nil {
				h.emit(res, pair)
			}
		}
	}
}
