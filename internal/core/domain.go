// Dense pair domain. Paths are interned with dense creation-order IDs,
// so a points-to pair packs into a single uint64 key and pair sets can
// trade the generic map[Pair]struct{} for a sparse-set hybrid: small
// sets (the overwhelming majority of outputs) stay a linear scan over a
// packed-key slice with zero map allocations, large sets promote to a
// uint64-keyed membership map. Assumption-set interning likewise keys
// on an FNV-1a hash of the ID triples instead of building a string per
// lookup; hash collisions are resolved by element comparison, so
// interning stays exact.
package core

import (
	"sort"

	"aliaslab/internal/paths"
)

// pairKey packs the interned path IDs of a pair into one comparable
// word: path ID in the high 32 bits, referent ID in the low. Packed
// keys order exactly like Pair.less, and path universes stay far below
// 2^32 paths (the pair budget trips first by orders of magnitude).
func pairKey(p Pair) uint64 {
	return uint64(uint32(p.Path.ID()))<<32 | uint64(uint32(p.Ref.ID()))
}

// pairSetSmall is the membership-scan threshold: sets at or below this
// size dedupe by scanning the packed-key slice, larger ones carry a
// map. Most outputs hold a handful of pairs; the scan beats a map
// lookup there and never allocates.
const pairSetSmall = 16

// PairSet is an insertion-ordered set of pairs over the dense pair
// domain. Iterating the List gives a deterministic order when the
// construction sequence is deterministic, which every worklist strategy
// of the solver engine guarantees.
type PairSet struct {
	keys []uint64 // packed pair keys, insertion order (parallel to list)
	list []Pair
	m    map[uint64]struct{} // non-nil once the set outgrows the scan

	// refs memoizes Referents incrementally: the distinct referents of
	// ε-path pairs, in first-appearance order. Pairs are never removed,
	// so maintaining it on Add is exact.
	refs    []*paths.Path
	refSeen map[uint64]struct{} // non-nil once refs outgrows the scan
}

// Add inserts p, reporting whether it was new.
func (s *PairSet) Add(p Pair) bool {
	k := pairKey(p)
	if s.m != nil {
		if _, ok := s.m[k]; ok {
			return false
		}
		s.m[k] = struct{}{}
	} else {
		for _, kk := range s.keys {
			if kk == k {
				return false
			}
		}
		if len(s.keys) >= pairSetSmall {
			s.m = make(map[uint64]struct{}, 2*len(s.keys))
			for _, kk := range s.keys {
				s.m[kk] = struct{}{}
			}
			s.m[k] = struct{}{}
		}
	}
	s.keys = append(s.keys, k)
	s.list = append(s.list, p)
	if p.Path.IsEmptyOffset() {
		s.addReferent(p.Ref)
	}
	return true
}

// addReferent records the referent of a new ε-path pair, deduplicated
// with the same small-scan/map hybrid as the pair keys.
func (s *PairSet) addReferent(ref *paths.Path) {
	k := uint64(uint32(ref.ID()))
	if s.refSeen != nil {
		if _, ok := s.refSeen[k]; ok {
			return
		}
		s.refSeen[k] = struct{}{}
	} else {
		for _, r := range s.refs {
			if r == ref {
				return
			}
		}
		if len(s.refs) >= pairSetSmall {
			s.refSeen = make(map[uint64]struct{}, 2*len(s.refs))
			for _, r := range s.refs {
				s.refSeen[uint64(uint32(r.ID()))] = struct{}{}
			}
			s.refSeen[k] = struct{}{}
		}
	}
	s.refs = append(s.refs, ref)
}

// Has reports membership.
func (s *PairSet) Has(p Pair) bool {
	k := pairKey(p)
	if s.m != nil {
		_, ok := s.m[k]
		return ok
	}
	for _, kk := range s.keys {
		if kk == k {
			return true
		}
	}
	return false
}

// Len returns the number of pairs.
func (s *PairSet) Len() int { return len(s.list) }

// List returns the pairs in insertion order. The caller must not mutate
// the returned slice.
func (s *PairSet) List() []Pair { return s.list }

// Sorted returns the pairs ordered by interned path IDs.
func (s *PairSet) Sorted() []Pair {
	out := append([]Pair(nil), s.list...)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Referents returns the distinct referent locations of the set's
// ε-path pairs — the locations a pointer value may denote — in
// first-appearance order. The slice is maintained incrementally on Add
// and shared across calls; the caller must not mutate it.
func (s *PairSet) Referents() []*paths.Path { return s.refs }

// ---------------------------------------------------------------------------
// Assumption-set interning (hashed on ID triples)

// aHash is an FNV-1a hash over the (formal, path, referent) ID triples
// of a canonical (sorted, deduplicated) assumption slice.
func aHash(elems []Assumption) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, a := range elems {
		mix(uint64(a.Formal.ID))
		mix(uint64(a.P.Path.ID()))
		mix(uint64(a.P.Ref.ID()))
	}
	return h
}

// assumptionsEqual compares two canonical slices element-wise
// (assumptions are comparable structs of interned pointers).
func assumptionsEqual(a, b []Assumption) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ATable interns assumption sets, keyed by the FNV-1a hash of their ID
// triples with per-hash collision buckets: a hash hit is confirmed by
// element comparison before the interned set is reused, so two distinct
// sets can never alias even under a hash collision.
type ATable struct {
	sets  map[uint64][]*ASet
	empty *ASet
}

// NewATable returns an empty intern table.
func NewATable() *ATable {
	return &ATable{sets: make(map[uint64][]*ASet), empty: &ASet{}}
}

// EmptySet returns the interned empty assumption set.
func (t *ATable) EmptySet() *ASet { return t.empty }

// intern returns the canonical *ASet for a sorted, deduplicated
// element slice, creating it on first sight. The slice is adopted, not
// copied: callers must not retain it.
func (t *ATable) intern(elems []Assumption) *ASet {
	if len(elems) == 0 {
		return t.empty
	}
	h := aHash(elems)
	for _, s := range t.sets[h] {
		if assumptionsEqual(s.Elems, elems) {
			return s
		}
	}
	s := &ASet{Elems: elems}
	t.sets[h] = append(t.sets[h], s)
	return s
}

// Make interns the set containing the given assumptions (deduplicated
// and sorted).
func (t *ATable) Make(elems ...Assumption) *ASet {
	if len(elems) == 0 {
		return t.empty
	}
	sorted := append([]Assumption(nil), elems...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })
	dedup := sorted[:1]
	for _, a := range sorted[1:] {
		if a != dedup[len(dedup)-1] {
			dedup = append(dedup, a)
		}
	}
	return t.intern(dedup)
}

// Union returns the interned union of a and b.
func (t *ATable) Union(a, b *ASet) *ASet {
	if a == b || b.Empty() {
		return a
	}
	if a.Empty() {
		return b
	}
	merged := make([]Assumption, 0, len(a.Elems)+len(b.Elems))
	i, j := 0, 0
	for i < len(a.Elems) && j < len(b.Elems) {
		switch {
		case a.Elems[i] == b.Elems[j]:
			merged = append(merged, a.Elems[i])
			i++
			j++
		case a.Elems[i].less(b.Elems[j]):
			merged = append(merged, a.Elems[i])
			i++
		default:
			merged = append(merged, b.Elems[j])
			j++
		}
	}
	merged = append(merged, a.Elems[i:]...)
	merged = append(merged, b.Elems[j:]...)
	return t.intern(merged)
}
