package core_test

import (
	"sort"
	"strings"
	"testing"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// csRefNames returns the sorted referents of varName in the stripped CS
// result at main's return store.
func csRefNames(t *testing.T, u *driver.Unit, res *core.SensitiveResult, varName string) []string {
	t.Helper()
	ret := u.Graph.Entry.ReturnStore()
	if ret == nil {
		t.Fatalf("main has no return store")
	}
	var names []string
	for _, p := range res.QPairs(ret).Pairs() {
		if p.Path.Base() != nil && p.Path.Base().Name == varName && p.Path.Depth() == 0 {
			names = append(names, p.Ref.String())
		}
	}
	sort.Strings(names)
	return names
}

const pollutionSrc = `
int a, b;
int *pa, *pb;
void set(int **r, int *v) { *r = v; }
int main(void) {
	set(&pa, &a);
	set(&pb, &b);
	return 0;
}
`

func TestSensitiveRemovesPollution(t *testing.T) {
	u := load(t, pollutionSrc)
	ci := core.AnalyzeInsensitive(u.Graph)
	cs := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci})
	if cs.Aborted {
		t.Fatal("CS analysis aborted")
	}

	// CI pollutes: pa -> {a, b}. CS separates the two call sites.
	if got := csRefNames(t, u, cs, "pa"); strings.Join(got, ",") != "a" {
		t.Fatalf("CS: pa points to %v, want [a]", got)
	}
	if got := csRefNames(t, u, cs, "pb"); strings.Join(got, ",") != "b" {
		t.Fatalf("CS: pb points to %v, want [b]", got)
	}

	// The CS result is a subset of CI on every output.
	stripped := cs.Strip()
	u.Graph.Outputs(func(o *vdg.Output) {
		cis := ci.Pairs(o)
		if stripped[o] == nil {
			return
		}
		for _, p := range stripped[o].List() {
			if !cis.Has(p) {
				t.Errorf("CS found %v on %v but CI did not (CS must refine CI)", p, o)
			}
		}
	})
}

func TestSensitiveUnoptimizedMatchesOptimized(t *testing.T) {
	// §4.2: the CI-driven optimizations must not change the stripped
	// solution.
	for _, src := range []string{pollutionSrc, `
int g1, g2;
int *q;
int *pick(int *x, int *y, int c) { if (c) return x; return y; }
int main(void) {
	q = pick(&g1, &g2, 1);
	*q = 4;
	return 0;
}
`} {
		u := load(t, src)
		ci := core.AnalyzeInsensitive(u.Graph)
		opt := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci}).Strip()
		unopt := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{}).Strip()
		u.Graph.Outputs(func(o *vdg.Output) {
			a, b := opt[o], unopt[o]
			al, bl := 0, 0
			if a != nil {
				al = a.Len()
			}
			if b != nil {
				bl = b.Len()
			}
			if al != bl {
				t.Fatalf("output %v: optimized has %d pairs, unoptimized %d", o, al, bl)
			}
			if a == nil {
				return
			}
			for _, p := range a.List() {
				if !b.Has(p) {
					t.Fatalf("output %v: pair %v only in optimized result", o, p)
				}
			}
		})
	}
}

func TestSensitiveRecursionTerminates(t *testing.T) {
	u := load(t, `
struct node { struct node *next; int v; };
struct node *build(int n) {
	struct node *h;
	if (n == 0) return 0;
	h = (struct node *) malloc(sizeof(struct node));
	h->next = build(n - 1);
	h->v = n;
	return h;
}
int total(struct node *l) {
	if (l == 0) return 0;
	return l->v + total(l->next);
}
struct node *list;
int main(void) {
	list = build(10);
	return total(list);
}
`)
	ci := core.AnalyzeInsensitive(u.Graph)
	cs := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 5_000_000})
	if cs.Aborted {
		t.Fatal("CS aborted on recursive list builder")
	}
	if got := csRefNames(t, u, cs, "list"); len(got) != 1 || !strings.HasPrefix(got[0], "malloc@") {
		t.Fatalf("list points to %v, want the single allocation site", got)
	}
}

func TestSensitiveMatchesCIOnIndirectOpsForSharedListRoutines(t *testing.T) {
	// The part-benchmark phenomenon (§5.2): two lists manipulated by the
	// same routines, with elements exchanged between them — CI's
	// cross-pollution is harmless because the lists' contents already
	// mix at runtime.
	u := load(t, `
struct elem { struct elem *next; int v; };
struct elem *la, *lb;
void push(struct elem **list, struct elem *e) {
	e->next = *list;
	*list = e;
}
struct elem *pop(struct elem **list) {
	struct elem *e;
	e = *list;
	if (e) *list = e->next;
	return e;
}
int main(void) {
	int i;
	for (i = 0; i < 4; i++) {
		push(&la, (struct elem *) malloc(sizeof(struct elem)));
		push(&lb, (struct elem *) malloc(sizeof(struct elem)));
	}
	// Exchange elements between the lists.
	push(&la, pop(&lb));
	push(&lb, pop(&la));
	return 0;
}
`)
	ci := core.AnalyzeInsensitive(u.Graph)
	cs := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 20_000_000})
	if cs.Aborted {
		t.Fatal("CS aborted")
	}
	stripped := cs.Strip()
	// At every indirect memory operation, the referent sets must agree.
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if (n.Kind != vdg.KLookup && n.Kind != vdg.KUpdate) || !n.Indirect {
				continue
			}
			ciRefs := ci.Pairs(n.Loc()).Referents()
			var csRefs []*paths.Path
			if s := stripped[n.Loc()]; s != nil {
				csRefs = s.Referents()
			}
			if len(ciRefs) != len(csRefs) {
				t.Errorf("%s node at %s: CI %d referents, CS %d", n.Kind, n.Pos, len(ciRefs), len(csRefs))
			}
		}
	}
}

// TestBoundedAssumptionSets: limiting assumption-set sizes ([LR92]-style,
// paper §4.2) soundly over-approximates the unbounded analysis, and a
// generous bound changes nothing.
func TestBoundedAssumptionSets(t *testing.T) {
	u := load(t, pollutionSrc)
	ci := core.AnalyzeInsensitive(u.Graph)
	full := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 5_000_000}).Strip()
	wide := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 5_000_000, MaxAssumptions: 64}).Strip()
	tight := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 5_000_000, MaxAssumptions: 1}).Strip()
	zeroish := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 5_000_000, MaxAssumptions: 0}).Strip()
	_ = zeroish // 0 means unbounded, by the option contract

	subset := func(a, b map[*vdg.Output]*core.PairSet) bool {
		ok := true
		u.Graph.Outputs(func(o *vdg.Output) {
			as := a[o]
			if as == nil {
				return
			}
			for _, p := range as.List() {
				if b[o] == nil || !b[o].Has(p) {
					ok = false
				}
			}
		})
		return ok
	}

	// A wide bound must reproduce the unbounded result exactly.
	if !subset(full, wide) || !subset(wide, full) {
		t.Fatal("bound of 64 changed the solution on a tiny program")
	}
	// The tight bound must over-approximate (full ⊆ tight ⊆ CI).
	if !subset(full, tight) {
		t.Fatal("bounded analysis lost pairs the unbounded one has (unsound)")
	}
	ciSets := ci.Sets
	if !subset(tight, ciSets) {
		t.Fatal("bounded analysis exceeded CI")
	}
	// And with one assumption per pair, the pollution example loses its
	// caller separation: pa picks up b again.
	count := func(sets map[*vdg.Output]*core.PairSet) int {
		total := 0
		for _, s := range sets {
			total += s.Len()
		}
		return total
	}
	if count(tight) <= count(full) {
		t.Errorf("tight bound found %d pairs, unbounded %d; expected a precision loss",
			count(tight), count(full))
	}
}
