// Package core implements the paper's analyses: the context-insensitive
// points-to analysis of Figure 1 and the maximally context-sensitive
// variant of Figure 5 with its assumption sets, subsumption rule, and
// the two CI-driven pruning optimizations of §4.2.
//
// The representation work lives in domain.go (the dense pair domain and
// hashed assumption-set interning); the fixpoint loop itself is owned by
// internal/solver, which both analyses drive through per-node transfer
// functions.
package core

import (
	"fmt"
	"strings"

	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// Pair is one points-to pair (path, referent): indirecting through any
// location (or offset) denoted by Path may return any location denoted
// by Ref. Paths are interned, so Pair is comparable.
type Pair struct {
	Path *paths.Path
	Ref  *paths.Path
}

func (p Pair) String() string {
	return fmt.Sprintf("(%s → %s)", p.Path, p.Ref)
}

// less orders pairs deterministically by interned path IDs.
func (p Pair) less(q Pair) bool {
	if p.Path.ID() != q.Path.ID() {
		return p.Path.ID() < q.Path.ID()
	}
	return p.Ref.ID() < q.Ref.ID()
}

// ---------------------------------------------------------------------------
// Assumption sets (context-sensitive analysis)

// Assumption states that Pair must hold on the formal-parameter output
// Formal of the enclosing procedure for a qualified pair to be valid.
type Assumption struct {
	Formal *vdg.Output
	P      Pair
}

func (a Assumption) String() string {
	return fmt.Sprintf("(%s, %s)", a.Formal, a.P)
}

func (a Assumption) less(b Assumption) bool {
	if a.Formal.ID != b.Formal.ID {
		return a.Formal.ID < b.Formal.ID
	}
	return a.P.less(b.P)
}

// ASet is an interned, canonically sorted assumption set. Interning
// makes subset tests cheap to memoize and equality a pointer compare.
type ASet struct {
	Elems []Assumption // sorted, no duplicates
}

// Empty reports whether the set has no assumptions.
func (s *ASet) Empty() bool { return len(s.Elems) == 0 }

// Len returns the number of assumptions.
func (s *ASet) Len() int { return len(s.Elems) }

func (s *ASet) String() string {
	var parts []string
	for _, a := range s.Elems {
		parts = append(parts, a.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SubsetOf reports whether every assumption of s is in t.
// Both are sorted, so this is a linear merge.
func (s *ASet) SubsetOf(t *ASet) bool {
	if s == t {
		return true
	}
	if len(s.Elems) > len(t.Elems) {
		return false
	}
	i := 0
	for _, a := range t.Elems {
		if i == len(s.Elems) {
			return true
		}
		if s.Elems[i] == a {
			i++
		} else if s.Elems[i].less(a) {
			return false // passed the point where s.Elems[i] could appear
		}
	}
	return i == len(s.Elems)
}

// QPair is a qualified points-to pair: the pair holds on an output
// whenever every assumption in A holds on entry to the enclosing
// procedure.
type QPair struct {
	P Pair
	A *ASet
}

func (q QPair) String() string { return q.P.String() + q.A.String() }

// QSet stores qualified pairs per plain pair as a minimal antichain of
// assumption sets: arrivals subsumed by an existing weaker set are
// discarded, and existing stronger sets are dropped when a weaker one
// arrives (they have already propagated; keeping them adds nothing).
type QSet struct {
	m     map[Pair][]*ASet
	pairs []Pair // insertion order of first appearance
}

// Add inserts q, reporting whether it survived subsumption (and thus
// must be propagated).
func (s *QSet) Add(q QPair) bool {
	added, _ := s.AddCounted(q)
	return added
}

// AddCounted is Add with the subsumption accounting the engine counters
// want: dropped is the number of existing stronger assumption sets the
// arrival displaced (0 when the arrival itself was subsumed).
func (s *QSet) AddCounted(q QPair) (added bool, dropped int) {
	if s.m == nil {
		s.m = make(map[Pair][]*ASet)
	}
	sets, seen := s.m[q.P]
	if !seen {
		s.pairs = append(s.pairs, q.P)
	}
	for _, a := range sets {
		if a.SubsetOf(q.A) {
			return false, 0 // already holds under a weaker assumption
		}
	}
	kept := sets[:0]
	for _, a := range sets {
		if !q.A.SubsetOf(a) {
			kept = append(kept, a)
		}
	}
	dropped = len(sets) - len(kept)
	s.m[q.P] = append(kept, q.A)
	return true, dropped
}

// Pairs returns the distinct plain pairs in first-appearance order.
func (s *QSet) Pairs() []Pair { return s.pairs }

// Sets returns the antichain of assumption sets under which p holds.
func (s *QSet) Sets(p Pair) []*ASet { return s.m[p] }

// All returns every qualified pair currently stored, in deterministic
// order.
func (s *QSet) All() []QPair {
	var out []QPair
	for _, p := range s.pairs {
		for _, a := range s.m[p] {
			out = append(out, QPair{P: p, A: a})
		}
	}
	return out
}

// Len returns the number of stored qualified pairs.
func (s *QSet) Len() int {
	n := 0
	for _, sets := range s.m {
		n += len(sets)
	}
	return n
}

// PairCount returns the number of distinct plain pairs.
func (s *QSet) PairCount() int { return len(s.pairs) }
