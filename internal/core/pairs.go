// Package core implements the paper's analyses: the context-insensitive
// points-to analysis of Figure 1 and the maximally context-sensitive
// variant of Figure 5 with its assumption sets, subsumption rule, and
// the two CI-driven pruning optimizations of §4.2.
package core

import (
	"fmt"
	"sort"
	"strings"

	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// Pair is one points-to pair (path, referent): indirecting through any
// location (or offset) denoted by Path may return any location denoted
// by Ref. Paths are interned, so Pair is comparable.
type Pair struct {
	Path *paths.Path
	Ref  *paths.Path
}

func (p Pair) String() string {
	return fmt.Sprintf("(%s → %s)", p.Path, p.Ref)
}

// less orders pairs deterministically by interned path IDs.
func (p Pair) less(q Pair) bool {
	if p.Path.ID() != q.Path.ID() {
		return p.Path.ID() < q.Path.ID()
	}
	return p.Ref.ID() < q.Ref.ID()
}

// PairSet is an insertion-ordered set of pairs. Iterating the List gives
// a deterministic order when the construction sequence is deterministic,
// which the FIFO worklist guarantees.
type PairSet struct {
	m    map[Pair]struct{}
	list []Pair
}

// Add inserts p, reporting whether it was new.
func (s *PairSet) Add(p Pair) bool {
	if s.m == nil {
		s.m = make(map[Pair]struct{})
	}
	if _, ok := s.m[p]; ok {
		return false
	}
	s.m[p] = struct{}{}
	s.list = append(s.list, p)
	return true
}

// Has reports membership.
func (s *PairSet) Has(p Pair) bool {
	_, ok := s.m[p]
	return ok
}

// Len returns the number of pairs.
func (s *PairSet) Len() int { return len(s.list) }

// List returns the pairs in insertion order. The caller must not mutate
// the returned slice.
func (s *PairSet) List() []Pair { return s.list }

// Sorted returns the pairs ordered by interned path IDs.
func (s *PairSet) Sorted() []Pair {
	out := append([]Pair(nil), s.list...)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Referents returns the distinct referent locations of the set's
// ε-path pairs — the locations a pointer value may denote.
func (s *PairSet) Referents() []*paths.Path {
	var out []*paths.Path
	seen := make(map[*paths.Path]bool)
	for _, p := range s.list {
		if p.Path.IsEmptyOffset() && !seen[p.Ref] {
			seen[p.Ref] = true
			out = append(out, p.Ref)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Assumption sets (context-sensitive analysis)

// Assumption states that Pair must hold on the formal-parameter output
// Formal of the enclosing procedure for a qualified pair to be valid.
type Assumption struct {
	Formal *vdg.Output
	P      Pair
}

func (a Assumption) String() string {
	return fmt.Sprintf("(%s, %s)", a.Formal, a.P)
}

func (a Assumption) less(b Assumption) bool {
	if a.Formal.ID != b.Formal.ID {
		return a.Formal.ID < b.Formal.ID
	}
	return a.P.less(b.P)
}

// ASet is an interned, canonically sorted assumption set. Interning
// makes subset tests cheap to memoize and equality a pointer compare.
type ASet struct {
	Elems []Assumption // sorted, no duplicates
	key   string
}

// Empty reports whether the set has no assumptions.
func (s *ASet) Empty() bool { return len(s.Elems) == 0 }

// Len returns the number of assumptions.
func (s *ASet) Len() int { return len(s.Elems) }

func (s *ASet) String() string {
	var parts []string
	for _, a := range s.Elems {
		parts = append(parts, a.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SubsetOf reports whether every assumption of s is in t.
// Both are sorted, so this is a linear merge.
func (s *ASet) SubsetOf(t *ASet) bool {
	if s == t {
		return true
	}
	if len(s.Elems) > len(t.Elems) {
		return false
	}
	i := 0
	for _, a := range t.Elems {
		if i == len(s.Elems) {
			return true
		}
		if s.Elems[i] == a {
			i++
		} else if s.Elems[i].less(a) {
			return false // passed the point where s.Elems[i] could appear
		}
	}
	return i == len(s.Elems)
}

// ATable interns assumption sets.
type ATable struct {
	sets  map[string]*ASet
	empty *ASet
}

// NewATable returns an empty intern table.
func NewATable() *ATable {
	t := &ATable{sets: make(map[string]*ASet)}
	t.empty = &ASet{key: ""}
	t.sets[""] = t.empty
	return t
}

// EmptySet returns the interned empty assumption set.
func (t *ATable) EmptySet() *ASet { return t.empty }

func aKey(elems []Assumption) string {
	var sb strings.Builder
	for _, a := range elems {
		fmt.Fprintf(&sb, "%d:%d:%d;", a.Formal.ID, a.P.Path.ID(), a.P.Ref.ID())
	}
	return sb.String()
}

// Make interns the set containing the given assumptions (deduplicated
// and sorted).
func (t *ATable) Make(elems ...Assumption) *ASet {
	if len(elems) == 0 {
		return t.empty
	}
	sorted := append([]Assumption(nil), elems...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })
	dedup := sorted[:1]
	for _, a := range sorted[1:] {
		if a != dedup[len(dedup)-1] {
			dedup = append(dedup, a)
		}
	}
	key := aKey(dedup)
	if s, ok := t.sets[key]; ok {
		return s
	}
	s := &ASet{Elems: dedup, key: key}
	t.sets[key] = s
	return s
}

// Union returns the interned union of a and b.
func (t *ATable) Union(a, b *ASet) *ASet {
	if a == b || b.Empty() {
		return a
	}
	if a.Empty() {
		return b
	}
	merged := make([]Assumption, 0, len(a.Elems)+len(b.Elems))
	i, j := 0, 0
	for i < len(a.Elems) && j < len(b.Elems) {
		switch {
		case a.Elems[i] == b.Elems[j]:
			merged = append(merged, a.Elems[i])
			i++
			j++
		case a.Elems[i].less(b.Elems[j]):
			merged = append(merged, a.Elems[i])
			i++
		default:
			merged = append(merged, b.Elems[j])
			j++
		}
	}
	merged = append(merged, a.Elems[i:]...)
	merged = append(merged, b.Elems[j:]...)
	key := aKey(merged)
	if s, ok := t.sets[key]; ok {
		return s
	}
	s := &ASet{Elems: merged, key: key}
	t.sets[key] = s
	return s
}

// QPair is a qualified points-to pair: the pair holds on an output
// whenever every assumption in A holds on entry to the enclosing
// procedure.
type QPair struct {
	P Pair
	A *ASet
}

func (q QPair) String() string { return q.P.String() + q.A.String() }

// QSet stores qualified pairs per plain pair as a minimal antichain of
// assumption sets: arrivals subsumed by an existing weaker set are
// discarded, and existing stronger sets are dropped when a weaker one
// arrives (they have already propagated; keeping them adds nothing).
type QSet struct {
	m     map[Pair][]*ASet
	pairs []Pair // insertion order of first appearance
}

// Add inserts q, reporting whether it survived subsumption (and thus
// must be propagated).
func (s *QSet) Add(q QPair) bool {
	if s.m == nil {
		s.m = make(map[Pair][]*ASet)
	}
	sets, seen := s.m[q.P]
	if !seen {
		s.pairs = append(s.pairs, q.P)
	}
	for _, a := range sets {
		if a.SubsetOf(q.A) {
			return false // already holds under a weaker assumption
		}
	}
	kept := sets[:0]
	for _, a := range sets {
		if !q.A.SubsetOf(a) {
			kept = append(kept, a)
		}
	}
	s.m[q.P] = append(kept, q.A)
	return true
}

// Pairs returns the distinct plain pairs in first-appearance order.
func (s *QSet) Pairs() []Pair { return s.pairs }

// Sets returns the antichain of assumption sets under which p holds.
func (s *QSet) Sets(p Pair) []*ASet { return s.m[p] }

// All returns every qualified pair currently stored, in deterministic
// order.
func (s *QSet) All() []QPair {
	var out []QPair
	for _, p := range s.pairs {
		for _, a := range s.m[p] {
			out = append(out, QPair{P: p, A: a})
		}
	}
	return out
}

// Len returns the number of stored qualified pairs.
func (s *QSet) Len() int {
	n := 0
	for _, sets := range s.m {
		n += len(sets)
	}
	return n
}

// PairCount returns the number of distinct plain pairs.
func (s *QSet) PairCount() int { return len(s.pairs) }
