package core_test

import (
	"sort"
	"strings"
	"testing"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/vdg"
)

// load builds a unit from source, failing the test on any diagnostic.
func load(t *testing.T, src string) *driver.Unit {
	t.Helper()
	u, err := driver.LoadString("test.c", src, vdg.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return u
}

// refNames returns the sorted referent names of a pointer variable's
// final store contents: it finds the variable's base, then collects the
// referents of pairs whose path is exactly that base in the store
// reaching main's return.
func refNamesAt(t *testing.T, u *driver.Unit, res *core.Result, varName string) []string {
	t.Helper()
	ret := u.Graph.Entry.ReturnStore()
	if ret == nil {
		t.Fatalf("main has no return store")
	}
	var names []string
	for _, p := range res.Pairs(ret).List() {
		if p.Path.Base() != nil && p.Path.Base().Name == varName && p.Path.Depth() == 0 {
			names = append(names, p.Ref.String())
		}
	}
	sort.Strings(names)
	return names
}

func TestBasicPointsTo(t *testing.T) {
	u := load(t, `
int g;
int *p;
int main(void) {
	int x;
	p = &g;
	*p = 5;
	x = *p;
	return x;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	if got := refNamesAt(t, u, res, "p"); len(got) != 1 || got[0] != "g" {
		t.Fatalf("p points to %v, want [g]", got)
	}

	// The indirect store *p = 5 must reference exactly one location: g.
	found := false
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KUpdate && n.Indirect {
				found = true
				refs := res.LocReferents(n)
				if len(refs) != 1 || refs[0].String() != "g" {
					t.Errorf("indirect update references %v, want [g]", refs)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no indirect update node found")
	}
}

func TestContextPollution(t *testing.T) {
	// The classic CI imprecision: one setter called from two sites
	// pollutes both callers' targets.
	u := load(t, `
int a, b;
int *pa, *pb;
void set(int **r, int *v) { *r = v; }
int main(void) {
	set(&pa, &a);
	set(&pb, &b);
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	got := refNamesAt(t, u, res, "pa")
	if strings.Join(got, ",") != "a,b" {
		t.Fatalf("CI: pa points to %v, want [a b] (cross-call pollution)", got)
	}
}

func TestStrongUpdateKillsOldTarget(t *testing.T) {
	u := load(t, `
int a, b;
int *p;
int main(void) {
	p = &a;
	p = &b;
	*p = 1;
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	// p is a strongly-updateable global: the second assignment kills the
	// first, so the final store has p -> b only.
	if got := refNamesAt(t, u, res, "p"); strings.Join(got, ",") != "b" {
		t.Fatalf("p points to %v, want [b] (strong update)", got)
	}
}

func TestWeakUpdateInLoopKeepsBoth(t *testing.T) {
	u := load(t, `
int a, b;
int *p;
int main(void) {
	int i;
	p = &a;
	for (i = 0; i < 10; i++) {
		if (i > 5) p = &b;
	}
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	if got := refNamesAt(t, u, res, "p"); strings.Join(got, ",") != "a,b" {
		t.Fatalf("p points to %v, want [a b]", got)
	}
}

func TestHeapAllocationSites(t *testing.T) {
	u := load(t, `
struct node { struct node *next; int v; };
struct node *head;
int main(void) {
	struct node *n;
	n = (struct node *) malloc(sizeof(struct node));
	n->next = head;
	head = n;
	n = (struct node *) malloc(sizeof(struct node));
	n->next = head;
	head = n;
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	// head = n is a strong update of a single-location global, so after
	// the second push head points only to the second allocation site...
	got := refNamesAt(t, u, res, "head")
	if len(got) != 1 || !strings.HasPrefix(got[0], "malloc@") {
		t.Fatalf("head points to %v, want exactly the second malloc site", got)
	}
	// ...while the second node's next field points at the first site:
	// the two allocation sites stay distinct.
	ret := u.Graph.Entry.ReturnStore()
	heapNext := make(map[string]bool)
	for _, p := range res.Pairs(ret).List() {
		if b := p.Path.Base(); b != nil && strings.HasPrefix(b.Name, "malloc@") && p.Path.Depth() == 1 {
			heapNext[p.Path.String()+"->"+p.Ref.String()] = true
		}
	}
	foundCrossSite := false
	for k := range heapNext {
		if strings.Contains(k, ".next->malloc@") && !strings.Contains(k, got[0]+".next->"+got[0]) {
			foundCrossSite = true
		}
	}
	if !foundCrossSite {
		t.Fatalf("no cross-site next link found; store heap pairs: %v", heapNext)
	}
}

func TestFunctionPointerCall(t *testing.T) {
	u := load(t, `
int g;
void setg(int v) { g = v; }
void (*fp)(int);
int main(void) {
	fp = setg;
	fp(3);
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	// The indirect call must resolve to setg.
	var calls int
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KCall {
				calls++
				callees := res.Callees[n]
				if len(callees) != 1 || callees[0].Fn.Name != "setg" {
					t.Errorf("call resolves to %v, want [setg]", calleeNames(callees))
				}
			}
		}
	}
	if calls != 1 {
		t.Fatalf("found %d calls, want 1", calls)
	}
}

func calleeNames(fgs []*vdg.FuncGraph) []string {
	var out []string
	for _, fg := range fgs {
		out = append(out, fg.Fn.Name)
	}
	return out
}

func TestStructFieldsSeparate(t *testing.T) {
	u := load(t, `
int a, b;
struct pairs { int *x; int *y; } s;
int main(void) {
	s.x = &a;
	s.y = &b;
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	ret := u.Graph.Entry.ReturnStore()
	want := map[string]string{"s.x": "a", "s.y": "b"}
	got := make(map[string]string)
	for _, p := range res.Pairs(ret).List() {
		got[p.Path.String()] = p.Ref.String()
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("store has %s -> %q, want %q (all pairs: %v)", k, got[k], v, got)
		}
	}
}

func TestUnionMembersOverlap(t *testing.T) {
	u := load(t, `
int a;
union uu { int *ip; char *cp; } uv;
char *result;
int main(void) {
	uv.ip = &a;
	result = uv.cp;
	return 0;
}
`)
	res := core.AnalyzeInsensitive(u.Graph)
	// Reading the cp member must observe the write to ip (overlap).
	if got := refNamesAt(t, u, res, "result"); strings.Join(got, ",") != "a" {
		t.Fatalf("result points to %v, want [a] (union overlap)", got)
	}
}
