package core

import (
	"aliaslab/internal/limits"
	"aliaslab/internal/paths"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// Metrics counts analysis work in the paper's terms: flow-in is one
// transfer-function application (processing one (input, pair) arrival);
// flow-out is one meet operation (attempting to add a pair to an
// output's set). It is derived from the engine's solver.Stats at the
// end of a run.
type Metrics struct {
	FlowIns  int
	FlowOuts int
	Pairs    int // pairs actually added across all outputs
}

// metricsFrom maps engine counters onto the paper's vocabulary.
func metricsFrom(st *solver.Stats) Metrics {
	return Metrics{FlowIns: st.Steps, FlowOuts: st.Meets, Pairs: st.PairInserts}
}

// Result is the output of the context-insensitive analysis: a points-to
// pair set for every node output, plus the discovered call graph.
type Result struct {
	Graph *vdg.Graph
	Sets  map[*vdg.Output]*PairSet

	// Callees maps each call node to the function graphs its function
	// input may denote (discovered on the fly from function pairs).
	Callees map[*vdg.Node][]*vdg.FuncGraph
	// Callers is the inverse: the call nodes that may invoke a function.
	Callers map[*vdg.FuncGraph][]*vdg.Node

	Metrics Metrics

	// Engine is the solver-engine counter record of the run (strategy,
	// steps, meets, subsumption, worklist depth).
	Engine solver.Stats

	// Stopped is non-nil when a resource budget halted the fixpoint
	// before convergence. The sets computed so far are then an
	// under-approximation of the fixpoint and must not be used as a
	// sound may-alias answer; callers degrade or report instead.
	Stopped *limits.Violation
}

// Pairs returns the pair set of o (possibly empty, never nil).
func (r *Result) Pairs(o *vdg.Output) *PairSet {
	if s, ok := r.Sets[o]; ok {
		return s
	}
	return &PairSet{}
}

// LocReferents returns the distinct locations the location input of a
// lookup/update node may denote.
func (r *Result) LocReferents(n *vdg.Node) []*paths.Path {
	return r.Pairs(n.Loc()).Referents()
}

// workItem is one (input, pair) arrival, as in the paper's worklist.
type workItem struct {
	in   *vdg.Input
	pair Pair
}

// topoPriority assigns each VDG input its scheduling key for the
// Priority strategy: creation order over functions, nodes, and inputs,
// which approximates a topological order of the acyclic core of the
// graph (earlier nodes feed later ones).
func topoPriority(g *vdg.Graph) map[*vdg.Input]int {
	pri := make(map[*vdg.Input]int)
	order := 0
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			for _, in := range n.Inputs {
				pri[in] = order
				order++
			}
		}
	}
	return pri
}

// engineConfig assembles the solver configuration shared by both
// analyses' item types.
func engineConfig[T any](g *vdg.Graph, strategy solver.Strategy, budget limits.Budget, maxSteps int, input func(T) *vdg.Input) solver.Config[T] {
	cfg := solver.Config[T]{Strategy: strategy, Budget: budget, MaxSteps: maxSteps}
	if strategy == solver.Priority {
		pri := topoPriority(g)
		cfg.Prio = func(item T) int { return pri[input(item)] }
	}
	return cfg
}

// insensitive is the analysis state.
type insensitive struct {
	g   *vdg.Graph
	res *Result
	eng *solver.Engine[workItem]
	st  *solver.Stats
}

// AnalyzeInsensitive runs the context-insensitive points-to analysis of
// [Ruf95, Figure 1] over the whole-program VDG, with no resource
// limits (it always runs to the fixpoint).
func AnalyzeInsensitive(g *vdg.Graph) *Result {
	return AnalyzeInsensitiveBudgeted(g, limits.Budget{})
}

// AnalyzeInsensitiveBudgeted is AnalyzeInsensitive under a resource
// budget: the engine checks the budget before every flow-in and stops
// with Result.Stopped set when a limit trips. Under the zero
// (unlimited) budget the result is identical to AnalyzeInsensitive.
func AnalyzeInsensitiveBudgeted(g *vdg.Graph, budget limits.Budget) *Result {
	return AnalyzeInsensitiveEngine(g, budget, solver.FIFO)
}

// AnalyzeInsensitiveEngine is the fully configured entry point: the
// analysis runs on the shared solver engine under the given budget and
// worklist strategy. Every strategy converges to the same fixpoint;
// FIFO is the reference discipline for golden outputs.
func AnalyzeInsensitiveEngine(g *vdg.Graph, budget limits.Budget, strategy solver.Strategy) *Result {
	a := &insensitive{
		g: g,
		res: &Result{
			Graph:   g,
			Sets:    make(map[*vdg.Output]*PairSet),
			Callees: make(map[*vdg.Node][]*vdg.FuncGraph),
			Callers: make(map[*vdg.FuncGraph][]*vdg.Node),
		},
		eng: solver.New(engineConfig(g, strategy, budget, 0, func(it workItem) *vdg.Input { return it.in })),
	}
	a.st = a.eng.Stats()
	empty := g.Universe.Empty()

	// Seed: every base-location constant points to its location.
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KAddr || n.Kind == vdg.KAlloc {
				a.flowOut(n.Outputs[0], Pair{Path: empty, Ref: n.Path})
			}
		}
	}

	out := a.eng.Run(func(it workItem) { a.flowIn(it.in, it.pair) })
	a.res.Stopped = out.Stopped
	a.res.Engine = *a.st
	a.res.Metrics = metricsFrom(a.st)
	return a.res
}

// flowOut adds pair to the set on out; new pairs are queued at every
// consumer.
func (a *insensitive) flowOut(out *vdg.Output, pair Pair) {
	a.st.Meets++
	s, ok := a.res.Sets[out]
	if !ok {
		s = &PairSet{}
		a.res.Sets[out] = s
	}
	if !s.Add(pair) {
		return
	}
	a.st.PairInserts++
	for _, in := range out.Consumers {
		a.eng.Push(workItem{in: in, pair: pair})
	}
}

// pairsAt returns the current set on the source feeding in.
func (a *insensitive) pairsAt(src *vdg.Output) []Pair {
	if s, ok := a.res.Sets[src]; ok {
		return s.List()
	}
	return nil
}

// flowIn implements the per-node transfer functions.
func (a *insensitive) flowIn(in *vdg.Input, pair Pair) {
	n := in.Node
	switch n.Kind {
	case vdg.KLookup:
		a.lookupFlow(n, in, pair)
	case vdg.KUpdate:
		a.updateFlow(n, in, pair)
	case vdg.KCall:
		a.callFlow(n, in, pair)
	case vdg.KReturn:
		a.returnFlow(n, in, pair)
	case vdg.KGamma:
		a.flowOut(n.Outputs[0], pair)
	case vdg.KPrimop:
		if n.Transparent {
			if n.Op == vdg.OpChecked && IsMarkerRef(pair.Ref) {
				// A null guard proved the value non-null on this branch:
				// the marker referents do not pass the check.
				return
			}
			a.flowOut(n.Outputs[0], pair)
		}
	case vdg.KAlloc:
		// realloc: the old block's pairs flow through.
		a.flowOut(n.Outputs[0], pair)
	case vdg.KFree:
		// Deallocation is identity on the store (the kill is interpreted
		// by the checkers, not the points-to domain — removing pairs
		// would be unsound under may-aliasing).
		if in.Index == 1 {
			a.flowOut(n.Outputs[0], pair)
		}
	case vdg.KFieldAddr:
		if pair.Path.IsEmptyOffset() {
			ref := a.extendField(n, pair.Ref)
			a.flowOut(n.Outputs[0], Pair{Path: pair.Path, Ref: ref})
		}
	case vdg.KIndexAddr:
		if pair.Path.IsEmptyOffset() {
			a.flowOut(n.Outputs[0], Pair{Path: pair.Path, Ref: a.g.Universe.Index(pair.Ref)})
		}
	case vdg.KExtract:
		want := paths.Op{Field: n.Field, Union: n.Transparent}
		if op, ok := pair.Path.FirstOp(); ok && op.Overlaps(want) {
			tail := a.g.Universe.TailAfterFirst(pair.Path)
			a.flowOut(n.Outputs[0], Pair{Path: tail, Ref: pair.Ref})
		}
	}
}

// extendField applies a member operator; union members use the
// overlapping operator (the builder marks union accesses on the node).
func (a *insensitive) extendField(n *vdg.Node, p *paths.Path) *paths.Path {
	if n.Transparent { // union member
		return a.g.Universe.UnionField(p, n.Field)
	}
	return a.g.Universe.Field(p, n.Field)
}

// lookupFlow: a new location dereferences every store pair it may
// observe; a new store pair is observed by every location.
func (a *insensitive) lookupFlow(n *vdg.Node, in *vdg.Input, pair Pair) {
	u := a.g.Universe
	out := n.Outputs[0]
	switch in.Index {
	case 0: // location input
		if !pair.Path.IsEmptyOffset() {
			return
		}
		rl := pair.Ref
		for _, ps := range a.pairsAt(n.StoreIn()) {
			if paths.Dom(rl, ps.Path) {
				a.flowOut(out, Pair{Path: u.Subtract(ps.Path, rl), Ref: ps.Ref})
			}
		}
	case 1: // store input
		for _, pl := range a.pairsAt(n.Loc()) {
			if !pl.Path.IsEmptyOffset() {
				continue
			}
			if paths.Dom(pl.Ref, pair.Path) {
				a.flowOut(out, Pair{Path: u.Subtract(pair.Path, pl.Ref), Ref: pair.Ref})
			}
		}
	}
}

// updateFlow implements strong updates: a store pair passes through only
// via location referents that do not definitely overwrite it, and store
// pairs are blocked entirely until the first location arrives (the
// dual-worklist behaviour of [CWZ90]).
func (a *insensitive) updateFlow(n *vdg.Node, in *vdg.Input, pair Pair) {
	u := a.g.Universe
	out := n.Outputs[0]
	switch in.Index {
	case 0: // location input
		if !pair.Path.IsEmptyOffset() {
			return
		}
		rl := pair.Ref
		for _, pv := range a.pairsAt(n.Value()) {
			a.flowOut(out, Pair{Path: u.Append(rl, pv.Path), Ref: pv.Ref})
		}
		for _, ps := range a.pairsAt(n.StoreIn()) {
			if !paths.StrongDom(rl, ps.Path) {
				a.flowOut(out, ps)
			}
		}
	case 1: // store input
		for _, pl := range a.pairsAt(n.Loc()) {
			if !pl.Path.IsEmptyOffset() {
				continue
			}
			if !paths.StrongDom(pl.Ref, pair.Path) {
				a.flowOut(out, pair)
			}
		}
	case 2: // value input
		for _, pl := range a.pairsAt(n.Loc()) {
			if !pl.Path.IsEmptyOffset() {
				continue
			}
			a.flowOut(out, Pair{Path: u.Append(pl.Ref, pair.Path), Ref: pair.Ref})
		}
	}
}

// callFlow: actuals propagate to the formals of every callee; a new
// function value updates the call graph and repropagates existing
// information to the new callee (and its returns to this call).
func (a *insensitive) callFlow(n *vdg.Node, in *vdg.Input, pair Pair) {
	switch in.Index {
	case 0: // function input
		if !pair.Path.IsEmptyOffset() {
			return
		}
		base := pair.Ref.Base()
		if base == nil || pair.Ref.Depth() != 0 {
			return
		}
		callee := a.g.FuncByBase[base]
		if callee == nil {
			return
		}
		a.addCallEdge(n, callee)
	case 1: // store input
		for _, callee := range a.res.Callees[n] {
			a.flowOut(callee.StoreParam, pair)
		}
	default: // actuals
		argIdx := in.Index - 2
		for _, callee := range a.res.Callees[n] {
			if argIdx < len(callee.ParamOuts) {
				a.flowOut(callee.ParamOuts[argIdx], pair)
			}
		}
	}
}

// addCallEdge records call → callee and repropagates both directions.
func (a *insensitive) addCallEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range a.res.Callees[n] {
		if c == callee {
			return
		}
	}
	a.res.Callees[n] = append(a.res.Callees[n], callee)
	a.res.Callers[callee] = append(a.res.Callers[callee], n)

	// Forward: existing actuals and store flow to the new callee.
	for _, pair := range a.pairsAt(n.StoreIn()) {
		a.flowOut(callee.StoreParam, pair)
	}
	for i, argIn := range vdg.CallArgs(n) {
		if i >= len(callee.ParamOuts) {
			break
		}
		for _, pair := range a.pairsAt(argIn.Src) {
			a.flowOut(callee.ParamOuts[i], pair)
		}
	}

	// Backward: the callee's existing returns flow to this call site.
	if rs := callee.ReturnStore(); rs != nil {
		for _, pair := range a.pairsAt(rs) {
			a.flowOut(vdg.CallStoreOut(n), pair)
		}
	}
	if rv := callee.ReturnValue(); rv != nil {
		if res := vdg.CallResultOut(n); res != nil {
			for _, pair := range a.pairsAt(rv) {
				a.flowOut(res, pair)
			}
		}
	}
}

// returnFlow: values and stores reaching a function's return sink flow
// to the corresponding outputs at every call site.
func (a *insensitive) returnFlow(n *vdg.Node, in *vdg.Input, pair Pair) {
	fg := n.Fn
	switch in.Index {
	case 0: // store
		for _, call := range a.res.Callers[fg] {
			a.flowOut(vdg.CallStoreOut(call), pair)
		}
	case 1: // value
		for _, call := range a.res.Callers[fg] {
			if res := vdg.CallResultOut(call); res != nil {
				a.flowOut(res, pair)
			}
		}
	}
}
