package core

import (
	"aliaslab/internal/limits"
	"aliaslab/internal/paths"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// Metrics counts analysis work in the paper's terms: flow-in is one
// transfer-function application (processing one (input, pair) arrival);
// flow-out is one meet operation (attempting to add a pair to an
// output's set). It is derived from the engine's solver.Stats at the
// end of a run.
type Metrics struct {
	FlowIns  int
	FlowOuts int
	Pairs    int // pairs actually added across all outputs
}

// metricsFrom maps engine counters onto the paper's vocabulary.
func metricsFrom(st *solver.Stats) Metrics {
	return Metrics{FlowIns: st.Steps, FlowOuts: st.Meets, Pairs: st.PairInserts}
}

// Result is the output of the context-insensitive analysis: a points-to
// pair set for every node output, plus the discovered call graph.
type Result struct {
	Graph *vdg.Graph
	Sets  map[*vdg.Output]*PairSet

	// Callees maps each call node to the function graphs its function
	// input may denote (discovered on the fly from function pairs).
	Callees map[*vdg.Node][]*vdg.FuncGraph
	// Callers is the inverse: the call nodes that may invoke a function.
	Callers map[*vdg.FuncGraph][]*vdg.Node

	Metrics Metrics

	// Engine is the solver-engine counter record of the run (strategy,
	// steps, meets, subsumption, worklist depth).
	Engine solver.Stats

	// Stopped is non-nil when a resource budget halted the fixpoint
	// before convergence. The sets computed so far are then an
	// under-approximation of the fixpoint and must not be used as a
	// sound may-alias answer; callers degrade or report instead.
	Stopped *limits.Violation
}

// Pairs returns the pair set of o (possibly empty, never nil).
func (r *Result) Pairs(o *vdg.Output) *PairSet {
	if s, ok := r.Sets[o]; ok {
		return s
	}
	return &PairSet{}
}

// LocReferents returns the distinct locations the location input of a
// lookup/update node may denote.
func (r *Result) LocReferents(n *vdg.Node) []*paths.Path {
	return r.Pairs(n.Loc()).Referents()
}

// workItem is one (input, pair) arrival, as in the paper's worklist.
type workItem struct {
	in   *vdg.Input
	pair Pair
}

// topoPriority assigns each VDG input its scheduling key for the
// Priority strategy: creation order over functions, nodes, and inputs,
// which approximates a topological order of the acyclic core of the
// graph (earlier nodes feed later ones).
func topoPriority(g *vdg.Graph) map[*vdg.Input]int {
	pri := make(map[*vdg.Input]int)
	order := 0
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			for _, in := range n.Inputs {
				pri[in] = order
				order++
			}
		}
	}
	return pri
}

// engineConfig assembles the solver configuration shared by both
// analyses' item types.
func engineConfig[T any](g *vdg.Graph, strategy solver.Strategy, budget limits.Budget, maxSteps int, input func(T) *vdg.Input) solver.Config[T] {
	cfg := solver.Config[T]{Strategy: strategy, Budget: budget, MaxSteps: maxSteps}
	if strategy == solver.Priority {
		pri := topoPriority(g)
		cfg.Prio = func(item T) int { return pri[input(item)] }
	}
	return cfg
}

// insensitive is the analysis state.
type insensitive struct {
	g   *vdg.Graph
	res *Result
	eng *solver.Engine[workItem]
	st  *solver.Stats
}

// AnalyzeInsensitive runs the context-insensitive points-to analysis of
// [Ruf95, Figure 1] over the whole-program VDG, with no resource
// limits (it always runs to the fixpoint).
func AnalyzeInsensitive(g *vdg.Graph) *Result {
	return AnalyzeInsensitiveBudgeted(g, limits.Budget{})
}

// AnalyzeInsensitiveBudgeted is AnalyzeInsensitive under a resource
// budget: the engine checks the budget before every flow-in and stops
// with Result.Stopped set when a limit trips. Under the zero
// (unlimited) budget the result is identical to AnalyzeInsensitive.
func AnalyzeInsensitiveBudgeted(g *vdg.Graph, budget limits.Budget) *Result {
	return AnalyzeInsensitiveEngine(g, budget, solver.FIFO)
}

// AnalyzeInsensitiveEngine is the fully configured entry point: the
// analysis runs on the shared solver engine under the given budget and
// worklist strategy. Every strategy converges to the same fixpoint;
// FIFO is the reference discipline for golden outputs.
func AnalyzeInsensitiveEngine(g *vdg.Graph, budget limits.Budget, strategy solver.Strategy) *Result {
	a := &insensitive{
		g: g,
		res: &Result{
			Graph:   g,
			Sets:    make(map[*vdg.Output]*PairSet),
			Callees: make(map[*vdg.Node][]*vdg.FuncGraph),
			Callers: make(map[*vdg.FuncGraph][]*vdg.Node),
		},
		eng: solver.New(engineConfig(g, strategy, budget, 0, func(it workItem) *vdg.Input { return it.in })),
	}
	a.st = a.eng.Stats()
	empty := g.Universe.Empty()

	// Seed: every base-location constant points to its location.
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KAddr || n.Kind == vdg.KAlloc {
				a.flowOut(n.Outputs[0], Pair{Path: empty, Ref: n.Path})
			}
		}
	}

	out := a.eng.Run(func(it workItem) { ciFlowIn(a, it.in, it.pair) })
	a.res.Stopped = out.Stopped
	a.res.Engine = *a.st
	a.res.Metrics = metricsFrom(a.st)
	return a.res
}

// ciHost implementation: the whole-program solver is the direct host —
// every emission is a flowOut into the one global set map, and call
// edges repropagate immediately.

func (a *insensitive) universe() *paths.Universe { return a.g.Universe }

func (a *insensitive) emit(out *vdg.Output, pair Pair) { a.flowOut(out, pair) }

func (a *insensitive) calleesOf(n *vdg.Node) []*vdg.FuncGraph { return a.res.Callees[n] }

func (a *insensitive) callersOf(fg *vdg.FuncGraph) []*vdg.Node { return a.res.Callers[fg] }

// linkEdge records call → callee and repropagates both directions.
func (a *insensitive) linkEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range a.res.Callees[n] {
		if c == callee {
			return
		}
	}
	a.res.Callees[n] = append(a.res.Callees[n], callee)
	a.res.Callers[callee] = append(a.res.Callers[callee], n)
	ciApplyCallEdge(a, n, callee)
}

// flowOut adds pair to the set on out; new pairs are queued at every
// consumer.
func (a *insensitive) flowOut(out *vdg.Output, pair Pair) {
	a.st.Meets++
	s, ok := a.res.Sets[out]
	if !ok {
		s = &PairSet{}
		a.res.Sets[out] = s
	}
	if !s.Add(pair) {
		return
	}
	a.st.PairInserts++
	for _, in := range out.Consumers {
		a.eng.Push(workItem{in: in, pair: pair})
	}
}

// pairsAt returns the current set on the source feeding in.
func (a *insensitive) pairsAt(src *vdg.Output) []Pair {
	if s, ok := a.res.Sets[src]; ok {
		return s.List()
	}
	return nil
}

// The transfer functions themselves (flow-in per node kind, call-edge
// repropagation) live in transfer.go, shared with the per-procedure
// region solver behind AnalyzeModular via the ciHost interface above.
