package core

import (
	"aliaslab/internal/limits"
	"aliaslab/internal/paths"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// DemandOptions configures a demand-driven (sliced) CI solve.
type DemandOptions struct {
	// Slice is the set of outputs the caller wants solved. It must be
	// backward-closed under the CI dependency relation (every output
	// whose pairs can influence a slice member is itself a member —
	// internal/query computes such closures); on a closed slice the
	// demand fixpoint equals the exhaustive fixpoint restricted to the
	// slice, which oracle.CheckDemand asserts. A nil slice means "all
	// outputs" and degenerates to the exhaustive solve.
	Slice map[*vdg.Output]bool

	// Budget optionally bounds the solve; Result.Stopped reports a trip.
	Budget limits.Budget

	// Strategy selects the worklist discipline (zero value = FIFO).
	Strategy solver.Strategy
}

// AnalyzeDemand runs the context-insensitive points-to analysis
// restricted to a slice of the VDG: seeding initializes only base
// locations inside the slice, and every emission targeting an output
// outside the slice is dropped. The transfer layer is the shared ciHost
// machinery (transfer.go), so per-output results on the slice are
// identical to AnalyzeInsensitive by construction — the demand solver
// never re-implements a transfer function, it only filters where work
// may land.
func AnalyzeDemand(g *vdg.Graph, opts DemandOptions) *Result {
	a := &demand{
		g:     g,
		slice: opts.Slice,
		res: &Result{
			Graph:   g,
			Sets:    make(map[*vdg.Output]*PairSet),
			Callees: make(map[*vdg.Node][]*vdg.FuncGraph),
			Callers: make(map[*vdg.FuncGraph][]*vdg.Node),
		},
		eng: solver.New(engineConfig(g, opts.Strategy, opts.Budget, 0, func(it workItem) *vdg.Input { return it.in })),
	}
	a.st = a.eng.Stats()
	empty := g.Universe.Empty()

	// Seed only the base-location constants whose output is in the
	// slice; procedures with no sliced outputs contribute no seeds and
	// receive no arrivals, so the engine never visits them.
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KAddr || n.Kind == vdg.KAlloc {
				if a.inSlice(n.Outputs[0]) {
					a.flowOut(n.Outputs[0], Pair{Path: empty, Ref: n.Path})
				}
			}
		}
	}

	out := a.eng.Run(func(it workItem) { ciFlowIn(a, it.in, it.pair) })
	a.res.Stopped = out.Stopped
	a.res.Engine = *a.st
	a.res.Metrics = metricsFrom(a.st)
	return a.res
}

// demand is the sliced whole-program host: identical to insensitive
// except that emissions outside the slice are dropped at the meet.
type demand struct {
	g     *vdg.Graph
	slice map[*vdg.Output]bool
	res   *Result
	eng   *solver.Engine[workItem]
	st    *solver.Stats
}

func (a *demand) inSlice(out *vdg.Output) bool {
	return a.slice == nil || a.slice[out]
}

func (a *demand) universe() *paths.Universe { return a.g.Universe }

func (a *demand) emit(out *vdg.Output, pair Pair) { a.flowOut(out, pair) }

func (a *demand) calleesOf(n *vdg.Node) []*vdg.FuncGraph { return a.res.Callees[n] }

func (a *demand) callersOf(fg *vdg.FuncGraph) []*vdg.Node { return a.res.Callers[fg] }

func (a *demand) linkEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range a.res.Callees[n] {
		if c == callee {
			return
		}
	}
	a.res.Callees[n] = append(a.res.Callees[n], callee)
	a.res.Callers[callee] = append(a.res.Callers[callee], n)
	ciApplyCallEdge(a, n, callee)
}

// flowOut is the slice-filtered meet: pairs land (and queue consumers)
// only on slice outputs. Dropped emissions are not counted as meets —
// Metrics reports work the demand solve actually performed, which is
// what the experiments table compares against the exhaustive solve.
func (a *demand) flowOut(out *vdg.Output, pair Pair) {
	if !a.inSlice(out) {
		return
	}
	a.st.Meets++
	s, ok := a.res.Sets[out]
	if !ok {
		s = &PairSet{}
		a.res.Sets[out] = s
	}
	if !s.Add(pair) {
		return
	}
	a.st.PairInserts++
	for _, in := range out.Consumers {
		a.eng.Push(workItem{in: in, pair: pair})
	}
}

func (a *demand) pairsAt(src *vdg.Output) []Pair {
	if s, ok := a.res.Sets[src]; ok {
		return s.List()
	}
	return nil
}
