package core

import (
	"aliaslab/internal/limits"
	"aliaslab/internal/paths"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// SensitiveOptions configures the context-sensitive analysis.
type SensitiveOptions struct {
	// CI supplies the context-insensitive result used by the §4.2
	// pruning optimizations. When nil the optimizations are disabled
	// and the analysis runs in its unoptimized (much slower) form.
	CI *Result

	// MaxSteps aborts the analysis after this many flow-in applications
	// (0 = unlimited). The unoptimized algorithm is exponential; the
	// paper could only run it on the smallest examples.
	MaxSteps int

	// MaxAssumptions, when positive, bounds assumption-set sizes the way
	// [LR92]-style systems do (paper §4.2: such systems "must
	// arbitrarily choose which assumptions to discard when the bound is
	// reached"). Discarding assumptions soundly weakens a qualified
	// pair — it then holds in more contexts — so the bounded analysis
	// over-approximates the unbounded one, trading precision for a
	// polynomially bounded context space. Sets are truncated to their
	// first MaxAssumptions elements in canonical order.
	MaxAssumptions int

	// Budget adds resource limits (step/pair caps, wall-clock deadline)
	// checked before every flow-in, on top of MaxSteps. When the budget
	// trips, the analysis stops with Aborted and Stopped set. A
	// positive Budget.MaxAssumptions also enables widening, as if set
	// via the MaxAssumptions field above (the larger of the two wins
	// nothing — the smaller positive bound applies).
	Budget limits.Budget

	// Strategy selects the solver engine's worklist discipline (zero
	// value: FIFO, the reference order for golden outputs). Every
	// strategy converges to the same stripped fixpoint.
	Strategy solver.Strategy
}

// effectiveMaxAssumptions merges the two ways to request widening.
func (o SensitiveOptions) effectiveMaxAssumptions() int {
	k := o.MaxAssumptions
	if b := o.Budget.MaxAssumptions; b > 0 && (k <= 0 || b < k) {
		k = b
	}
	return k
}

// SensitiveResult is the output of the context-sensitive analysis.
type SensitiveResult struct {
	Graph *vdg.Graph
	QSets map[*vdg.Output]*QSet

	// Callees/Callers: the call graph. Function values are propagated
	// context-insensitively, as in the paper (§4.1: assumptions on
	// function values were not implemented; verified harmless).
	Callees map[*vdg.Node][]*vdg.FuncGraph
	Callers map[*vdg.FuncGraph][]*vdg.Node

	Metrics Metrics

	// Engine is the solver-engine counter record of the run.
	Engine solver.Stats

	// Aborted is set when MaxSteps or the budget was exhausted; results
	// are then an under-approximation of the fixpoint and must not be
	// used for precision comparisons or as a sound may-alias answer.
	Aborted bool

	// Stopped identifies the budget limit that aborted the analysis
	// (nil when the fixpoint converged, or when only the legacy
	// MaxSteps bound tripped).
	Stopped *limits.Violation

	// Widened reports that assumption-set widening was active: the
	// result is a sound over-approximation of the exact
	// context-sensitive fixpoint (but still at least as precise as the
	// context-insensitive one on stripped pairs).
	Widened bool
}

// QPairs returns the qualified pair set of o (possibly empty, never nil).
func (r *SensitiveResult) QPairs(o *vdg.Output) *QSet {
	if s, ok := r.QSets[o]; ok {
		return s
	}
	return &QSet{}
}

// Strip computes the ordinary points-to pairs on each output by removing
// assumption sets and deduplicating (§4.1, final paragraph).
func (r *SensitiveResult) Strip() map[*vdg.Output]*PairSet {
	out := make(map[*vdg.Output]*PairSet, len(r.QSets))
	for o, qs := range r.QSets {
		ps := &PairSet{}
		for _, p := range qs.Pairs() {
			ps.Add(p)
		}
		out[o] = ps
	}
	return out
}

// qItem is one (input, qualified-pair) arrival.
type qItem struct {
	in *vdg.Input
	q  QPair
}

// retEntry is one qualified pair at a function's return sink, tagged
// with which return input (store or value) it arrived on.
type retEntry struct {
	q       QPair
	isStore bool
}

type sensitive struct {
	g    *vdg.Graph
	res  *SensitiveResult
	at   *ATable
	opts SensitiveOptions

	// maxAssumptions is the resolved widening threshold (0 = exact).
	maxAssumptions int

	eng *solver.Engine[qItem]
	st  *solver.Stats

	// CI-derived node facts for the optimizations.
	singleLoc map[*vdg.Node]bool          // lookup/update references ≤1 location
	ciLocRefs map[*vdg.Node][]*paths.Path // CI location referents per update

	// retNeeds indexes the qualified pairs at each function's return
	// sink by the (formal, pair) assumptions they carry, so that a new
	// actual pair at a call site only re-triggers propagate-return for
	// the return pairs whose assumptions it can newly satisfy (instead
	// of re-running every return pair, which dominates the running time
	// on recursion-heavy programs).
	retNeeds map[*vdg.Output]map[Pair][]retEntry
}

// AnalyzeSensitive runs the maximally context-sensitive analysis of
// [Ruf95, Figure 5], qualified-pair propagation with assumption sets,
// using the context-insensitive result (when provided) to prune
// assumption introduction without affecting precision (§4.2).
func AnalyzeSensitive(g *vdg.Graph, opts SensitiveOptions) *SensitiveResult {
	a := &sensitive{
		g: g,
		res: &SensitiveResult{
			Graph:   g,
			QSets:   make(map[*vdg.Output]*QSet),
			Callees: make(map[*vdg.Node][]*vdg.FuncGraph),
			Callers: make(map[*vdg.FuncGraph][]*vdg.Node),
		},
		at:             NewATable(),
		opts:           opts,
		maxAssumptions: opts.effectiveMaxAssumptions(),
		eng:            solver.New(engineConfig(g, opts.Strategy, opts.Budget, opts.MaxSteps, func(it qItem) *vdg.Input { return it.in })),
		retNeeds:       make(map[*vdg.Output]map[Pair][]retEntry),
	}
	a.st = a.eng.Stats()
	a.res.Widened = a.maxAssumptions > 0
	if opts.CI != nil {
		a.singleLoc = make(map[*vdg.Node]bool)
		a.ciLocRefs = make(map[*vdg.Node][]*paths.Path)
		for _, fg := range g.Funcs {
			for _, n := range fg.Nodes {
				if n.Kind == vdg.KLookup || n.Kind == vdg.KUpdate {
					refs := opts.CI.LocReferents(n)
					a.singleLoc[n] = len(refs) <= 1
					a.ciLocRefs[n] = refs
				}
			}
		}
	}

	empty := g.Universe.Empty()
	for _, fg := range g.Funcs {
		for _, n := range fg.Nodes {
			if n.Kind == vdg.KAddr || n.Kind == vdg.KAlloc {
				a.flowOut(n.Outputs[0], QPair{P: Pair{Path: empty, Ref: n.Path}, A: a.at.EmptySet()})
			}
		}
	}

	out := a.eng.Run(func(it qItem) { a.flowIn(it.in, it.q) })
	a.res.Aborted = out.Aborted
	a.res.Stopped = out.Stopped
	a.res.Engine = *a.st
	a.res.Metrics = metricsFrom(a.st)
	return a.res
}

// bound enforces the widening threshold by truncating oversized sets
// (a sound weakening: fewer assumptions means the pair holds more
// broadly).
func (a *sensitive) bound(s *ASet) *ASet {
	k := a.maxAssumptions
	if k <= 0 || s.Len() <= k {
		return s
	}
	return a.at.Make(s.Elems[:k]...)
}

func (a *sensitive) flowOut(out *vdg.Output, q QPair) {
	a.st.Meets++
	q.A = a.bound(q.A)
	s, ok := a.res.QSets[out]
	if !ok {
		s = &QSet{}
		a.res.QSets[out] = s
	}
	added, dropped := s.AddCounted(q)
	if !added {
		a.st.SubsumeHits++
		return // subsumed: already holds under weaker assumptions
	}
	a.st.SubsumeDrops += dropped
	a.st.PairInserts++
	for _, in := range out.Consumers {
		a.eng.Push(qItem{in: in, q: q})
	}
}

func (a *sensitive) qpairsAt(src *vdg.Output) []QPair {
	if s, ok := a.res.QSets[src]; ok {
		return s.All()
	}
	return nil
}

func (a *sensitive) flowIn(in *vdg.Input, q QPair) {
	n := in.Node
	switch n.Kind {
	case vdg.KLookup:
		a.lookupFlow(n, in, q)
	case vdg.KUpdate:
		a.updateFlow(n, in, q)
	case vdg.KCall:
		a.callFlow(n, in, q)
	case vdg.KReturn:
		a.returnFlow(n, in, q)
	case vdg.KGamma:
		a.flowOut(n.Outputs[0], q)
	case vdg.KPrimop:
		if n.Transparent {
			if n.Op == vdg.OpChecked && IsMarkerRef(q.P.Ref) {
				return
			}
			a.flowOut(n.Outputs[0], q)
		}
	case vdg.KAlloc:
		a.flowOut(n.Outputs[0], q)
	case vdg.KFree:
		if in.Index == 1 {
			a.flowOut(n.Outputs[0], q)
		}
	case vdg.KFieldAddr:
		if q.P.Path.IsEmptyOffset() {
			var ref *paths.Path
			if n.Transparent {
				ref = a.g.Universe.UnionField(q.P.Ref, n.Field)
			} else {
				ref = a.g.Universe.Field(q.P.Ref, n.Field)
			}
			a.flowOut(n.Outputs[0], QPair{P: Pair{Path: q.P.Path, Ref: ref}, A: q.A})
		}
	case vdg.KIndexAddr:
		if q.P.Path.IsEmptyOffset() {
			a.flowOut(n.Outputs[0], QPair{P: Pair{Path: q.P.Path, Ref: a.g.Universe.Index(q.P.Ref)}, A: q.A})
		}
	case vdg.KExtract:
		want := paths.Op{Field: n.Field, Union: n.Transparent}
		if op, ok := q.P.Path.FirstOp(); ok && op.Overlaps(want) {
			tail := a.g.Universe.TailAfterFirst(q.P.Path)
			a.flowOut(n.Outputs[0], QPair{P: Pair{Path: tail, Ref: q.P.Ref}, A: q.A})
		}
	}
}

// locAssumptions implements §4.2 optimization 1: when the CI analysis
// proved the operation references a single location, the location is
// context-invariant and its assumptions need not be tracked.
func (a *sensitive) locAssumptions(n *vdg.Node, al *ASet) *ASet {
	if a.singleLoc != nil && a.singleLoc[n] {
		return a.at.EmptySet()
	}
	return al
}

func (a *sensitive) lookupFlow(n *vdg.Node, in *vdg.Input, q QPair) {
	u := a.g.Universe
	out := n.Outputs[0]
	switch in.Index {
	case 0: // location
		if !q.P.Path.IsEmptyOffset() {
			return
		}
		rl := q.P.Ref
		al := a.locAssumptions(n, q.A)
		for _, qs := range a.qpairsAt(n.StoreIn()) {
			if paths.Dom(rl, qs.P.Path) {
				a.flowOut(out, QPair{
					P: Pair{Path: u.Subtract(qs.P.Path, rl), Ref: qs.P.Ref},
					A: a.at.Union(al, qs.A),
				})
			}
		}
	case 1: // store
		for _, ql := range a.qpairsAt(n.Loc()) {
			if !ql.P.Path.IsEmptyOffset() {
				continue
			}
			if paths.Dom(ql.P.Ref, q.P.Path) {
				al := a.locAssumptions(n, ql.A)
				a.flowOut(out, QPair{
					P: Pair{Path: u.Subtract(q.P.Path, ql.P.Ref), Ref: q.P.Ref},
					A: a.at.Union(al, q.A),
				})
			}
		}
	}
}

// ciUnmodifiable implements §4.2 optimization 2: a store pair whose path
// cannot be modified by any CI-possible location of this update passes
// through without new location assumptions.
func (a *sensitive) ciUnmodifiable(n *vdg.Node, p *paths.Path) bool {
	if a.ciLocRefs == nil {
		return false
	}
	refs := a.ciLocRefs[n]
	if len(refs) == 0 {
		// A CI-dead update: no referent ever reaches its location input,
		// so the CI analysis (and the exact CS analysis) block every
		// store pair at it — the [CWZ90] dual-worklist behaviour.
		// Passing pairs through here would push the optimized CS
		// solution outside CI's, breaking both the CS ⊆ CI lattice and
		// the §4.2 precision-neutrality claim. Found by corpusgen
		// differential testing on updates through never-assigned
		// pointers.
		return false
	}
	for _, r := range refs {
		if paths.Dom(r, p) {
			return false
		}
	}
	return true
}

func (a *sensitive) updateFlow(n *vdg.Node, in *vdg.Input, q QPair) {
	u := a.g.Universe
	out := n.Outputs[0]
	switch in.Index {
	case 0: // location
		if !q.P.Path.IsEmptyOffset() {
			return
		}
		rl := q.P.Ref
		al := a.locAssumptions(n, q.A)
		for _, qv := range a.qpairsAt(n.Value()) {
			a.flowOut(out, QPair{
				P: Pair{Path: u.Append(rl, qv.P.Path), Ref: qv.P.Ref},
				A: a.at.Union(al, qv.A),
			})
		}
		for _, qs := range a.qpairsAt(n.StoreIn()) {
			if a.ciUnmodifiable(n, qs.P.Path) {
				// Optimization 2 handles these on arrival; re-emitting
				// per location would only add redundant assumptions.
				continue
			}
			if !paths.StrongDom(rl, qs.P.Path) {
				a.flowOut(out, QPair{P: qs.P, A: a.at.Union(al, qs.A)})
			}
		}
	case 1: // store
		if a.ciUnmodifiable(n, q.P.Path) {
			a.flowOut(out, q)
			return
		}
		for _, ql := range a.qpairsAt(n.Loc()) {
			if !ql.P.Path.IsEmptyOffset() {
				continue
			}
			if !paths.StrongDom(ql.P.Ref, q.P.Path) {
				al := a.locAssumptions(n, ql.A)
				a.flowOut(out, QPair{P: q.P, A: a.at.Union(al, q.A)})
			}
		}
	case 2: // value
		for _, ql := range a.qpairsAt(n.Loc()) {
			if !ql.P.Path.IsEmptyOffset() {
				continue
			}
			al := a.locAssumptions(n, ql.A)
			a.flowOut(out, QPair{
				P: Pair{Path: u.Append(ql.P.Ref, q.P.Path), Ref: q.P.Ref},
				A: a.at.Union(al, q.A),
			})
		}
	}
}

// callFlow introduces fresh assumption sets at call boundaries: a pair
// entering a callee holds only under the assumption that it held on the
// corresponding formal.
func (a *sensitive) callFlow(n *vdg.Node, in *vdg.Input, q QPair) {
	switch in.Index {
	case 0: // function values stay context-insensitive
		if !q.P.Path.IsEmptyOffset() || q.P.Ref.Depth() != 0 {
			return
		}
		callee := a.g.FuncByBase[q.P.Ref.Base()]
		if callee == nil {
			return
		}
		a.addCallEdge(n, callee)
	case 1: // store
		for _, callee := range a.res.Callees[n] {
			a.propagateToFormal(callee.StoreParam, q)
			// A new store pair may satisfy return assumptions that were
			// previously unsatisfiable at this call site (Figure 5).
			a.retriggerReturns(n, callee.StoreParam, q.P)
		}
	default: // actuals
		argIdx := in.Index - 2
		for _, callee := range a.res.Callees[n] {
			if argIdx < len(callee.ParamOuts) {
				a.propagateToFormal(callee.ParamOuts[argIdx], q)
				a.retriggerReturns(n, callee.ParamOuts[argIdx], q.P)
			}
		}
	}
}

// propagateToFormal enters a qualified pair into a callee: the caller's
// assumptions are replaced by the single assumption that the pair holds
// on the formal.
func (a *sensitive) propagateToFormal(formal *vdg.Output, q QPair) {
	a.flowOut(formal, QPair{P: q.P, A: a.at.Make(Assumption{Formal: formal, P: q.P})})
}

// reproplicateReturns re-runs propagate-return for every qualified pair
// currently at the callee's return sink, targeted at call site n (used
// when a whole new call edge appears).
func (a *sensitive) reproplicateReturns(n *vdg.Node, callee *vdg.FuncGraph) {
	if rs := callee.ReturnStore(); rs != nil {
		for _, q := range a.qpairsAt(rs) {
			a.propagateReturn(n, vdg.CallStoreOut(n), q)
		}
	}
	if rv := callee.ReturnValue(); rv != nil {
		if res := vdg.CallResultOut(n); res != nil {
			for _, q := range a.qpairsAt(rv) {
				a.propagateReturn(n, res, q)
			}
		}
	}
}

// retriggerReturns re-runs propagate-return at call site n for exactly
// the return pairs that carry an assumption (formal, pair) — the ones a
// new actual pair can newly satisfy.
func (a *sensitive) retriggerReturns(n *vdg.Node, formal *vdg.Output, pair Pair) {
	byPair := a.retNeeds[formal]
	if byPair == nil {
		return
	}
	for _, e := range byPair[pair] {
		if e.isStore {
			a.propagateReturn(n, vdg.CallStoreOut(n), e.q)
		} else if res := vdg.CallResultOut(n); res != nil {
			a.propagateReturn(n, res, e.q)
		}
	}
}

// indexReturn records a return-sink pair under every assumption it
// carries.
func (a *sensitive) indexReturn(q QPair, isStore bool) {
	for _, asm := range q.A.Elems {
		byPair := a.retNeeds[asm.Formal]
		if byPair == nil {
			byPair = make(map[Pair][]retEntry)
			a.retNeeds[asm.Formal] = byPair
		}
		byPair[asm.P] = append(byPair[asm.P], retEntry{q: q, isStore: isStore})
	}
}

func (a *sensitive) addCallEdge(n *vdg.Node, callee *vdg.FuncGraph) {
	for _, c := range a.res.Callees[n] {
		if c == callee {
			return
		}
	}
	a.res.Callees[n] = append(a.res.Callees[n], callee)
	a.res.Callers[callee] = append(a.res.Callers[callee], n)

	for _, q := range a.qpairsAt(n.StoreIn()) {
		a.propagateToFormal(callee.StoreParam, q)
	}
	for i, argIn := range vdg.CallArgs(n) {
		if i >= len(callee.ParamOuts) {
			break
		}
		for _, q := range a.qpairsAt(argIn.Src) {
			a.propagateToFormal(callee.ParamOuts[i], q)
		}
	}
	a.reproplicateReturns(n, callee)
}

func (a *sensitive) returnFlow(n *vdg.Node, in *vdg.Input, q QPair) {
	fg := n.Fn
	a.indexReturn(q, in.Index == 0)
	for _, call := range a.res.Callers[fg] {
		switch in.Index {
		case 0:
			a.propagateReturn(call, vdg.CallStoreOut(call), q)
		case 1:
			if res := vdg.CallResultOut(call); res != nil {
				a.propagateReturn(call, res, q)
			}
		}
	}
}

// propagateReturn implements the paper's propagate-return: for each
// assumption on the returned pair, collect the assumption sets under
// which the assumed pair holds on the corresponding actual at this call
// site; the Cartesian product of those collections yields every caller
// assumption set sufficient to satisfy the callee's assumptions.
func (a *sensitive) propagateReturn(call *vdg.Node, target *vdg.Output, q QPair) {
	combos := []*ASet{a.at.EmptySet()}
	for _, asm := range q.A.Elems {
		src := a.actualFor(call, asm.Formal)
		if src == nil {
			return // arity mismatch: unsatisfiable at this site
		}
		qs, ok := a.res.QSets[src]
		if !ok {
			return
		}
		sets := qs.Sets(asm.P)
		if len(sets) == 0 {
			return // the assumed pair does not hold at this call site
		}
		next := make([]*ASet, 0, len(combos)*len(sets))
		for _, c := range combos {
			for _, s := range sets {
				next = append(next, a.at.Union(c, s))
			}
		}
		combos = next
	}
	for _, c := range combos {
		a.flowOut(target, QPair{P: q.P, A: c})
	}
}

// actualFor maps a callee formal output to the feeding output at a call
// site (the store input for the store formal, argument i for parameter
// formal i), or nil when the call does not supply it.
func (a *sensitive) actualFor(call *vdg.Node, formal *vdg.Output) *vdg.Output {
	fn := formal.Node.Fn
	if formal.Node.Kind == vdg.KStoreParam {
		return call.StoreIn()
	}
	for i, po := range fn.ParamOuts {
		if po == formal {
			args := vdg.CallArgs(call)
			if i < len(args) {
				return args[i].Src
			}
			return nil
		}
	}
	return nil
}
