package core

// Tests of the dense pair domain: the sparse-set/map promotion of
// PairSet, the incremental Referents memoization, and the hashed
// assumption-set interning (including its collision buckets, which the
// FNV keying makes reachable in principle even though no natural input
// collides).

import (
	"testing"

	"aliaslab/internal/paths"
)

// TestPairSetPromotion crosses the small-set scan threshold and checks
// that membership, deduplication, and insertion order survive the
// promotion to the map representation.
func TestPairSetPromotion(t *testing.T) {
	_, pool := pairUniverse()
	if len(pool) <= 2*pairSetSmall {
		t.Fatalf("pool too small to cross the %d-element threshold", pairSetSmall)
	}
	s := &PairSet{}
	for i, p := range pool {
		if !s.Add(p) {
			t.Fatalf("pair %d reported duplicate on first add", i)
		}
	}
	if s.m == nil {
		t.Fatalf("set of %d pairs never promoted to the map representation", len(pool))
	}
	if s.Len() != len(pool) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(pool))
	}
	for i, p := range pool {
		if !s.Has(p) {
			t.Fatalf("pair %d lost after promotion", i)
		}
		if s.Add(p) {
			t.Fatalf("pair %d re-added after promotion", i)
		}
		if s.List()[i] != p {
			t.Fatalf("insertion order broken at %d", i)
		}
	}
}

// TestReferentsIncremental checks the memoized Referents against a
// recomputation from List, across the promotion threshold: distinct
// ε-path referents only, first-appearance order.
func TestReferentsIncremental(t *testing.T) {
	u, _ := pairUniverse()
	var locs []*paths.Path
	for _, name := range []string{"r0", "r1", "r2", "r3", "r4", "r5"} {
		b := u.NewBase(paths.VarBase, name, false, false)
		locs = append(locs, u.Root(b))
		locs = append(locs, u.Field(u.Root(b), "f"))
		locs = append(locs, u.Field(u.Root(b), "g"))
	}
	s := &PairSet{}
	check := func() {
		t.Helper()
		var want []*paths.Path
		seen := make(map[*paths.Path]bool)
		for _, p := range s.List() {
			if p.Path.IsEmptyOffset() && !seen[p.Ref] {
				seen[p.Ref] = true
				want = append(want, p.Ref)
			}
		}
		got := s.Referents()
		if len(got) != len(want) {
			t.Fatalf("Referents has %d entries, recompute finds %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Referents[%d] = %v, want %v (first-appearance order)", i, got[i], want[i])
			}
		}
	}
	for i, ref := range locs {
		s.Add(Pair{Path: u.Empty(), Ref: ref})
		s.Add(Pair{Path: u.Field(u.Empty(), "f"), Ref: ref}) // offset pair: not a referent
		s.Add(Pair{Path: locs[0], Ref: ref})                 // store pair: not a referent
		s.Add(Pair{Path: u.Empty(), Ref: locs[i/2]})         // duplicate referent
		check()
	}
	if s.refSeen == nil {
		t.Fatalf("%d referents never promoted the memo to its map representation", len(s.Referents()))
	}
}

// TestATableHashCollisionResolved forces two distinct assumption sets
// into the same hash bucket and checks they intern to distinct sets:
// bucket hits must be confirmed by element comparison, never by hash
// alone.
func TestATableHashCollisionResolved(t *testing.T) {
	_, pool := pairUniverse()
	at := NewATable()
	a := []Assumption{{Formal: fakeFormals[0], P: pool[0]}}
	b := []Assumption{{Formal: fakeFormals[1], P: pool[1]}}

	// Manufacture the collision: pre-seed a's interned set into b's
	// bucket, as if aHash had mapped both slices to the same key.
	sa := at.intern(a)
	at.sets[aHash(b)] = append(at.sets[aHash(b)], sa)

	sb := at.intern(b)
	if sb == sa {
		t.Fatal("distinct assumption sets aliased through a shared hash bucket")
	}
	if len(sb.Elems) != 1 || sb.Elems[0] != b[0] {
		t.Fatalf("interned set carries %v, want %v", sb.Elems, b)
	}
	if at.intern(b) != sb {
		t.Fatal("re-interning after a collision no longer canonicalizes")
	}
}

// BenchmarkPairSetReferents measures the memoized Referents on a
// realistically small set and on a promoted one. Before the
// memoization, every call rebuilt a map and a slice over the whole set
// (~µs at these sizes); now it returns the incrementally-maintained
// slice.
func BenchmarkPairSetReferents(b *testing.B) {
	u, _ := pairUniverse()
	build := func(n int) *PairSet {
		s := &PairSet{}
		for i := 0; i < n; i++ {
			base := u.NewBase(paths.VarBase, "v"+string(rune('a'+i%26))+string(rune('a'+i/26)), false, false)
			s.Add(Pair{Path: u.Empty(), Ref: u.Root(base)})
		}
		return s
	}
	for _, size := range []struct {
		name string
		n    int
	}{{"small", 4}, {"promoted", 64}} {
		s := build(size.n)
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := s.Referents(); len(got) != size.n {
					b.Fatalf("got %d referents, want %d", len(got), size.n)
				}
			}
		})
	}
}
