package core

import (
	"aliaslab/internal/paths"
	"aliaslab/internal/vdg"
)

// Referent classification helpers for the diagnostic checkers. They
// operate on referent paths as found in points-to pairs; a nil path (no
// referent) classifies as nothing.

// IsMarkerRef reports whether p is rooted at a diagnostics marker base
// (<null> or <uninit>).
func IsMarkerRef(p *paths.Path) bool {
	b := p.Base()
	return b != nil && b.Marker()
}

// IsNullRef reports whether p is the <null> marker location.
func IsNullRef(p *paths.Path) bool {
	b := p.Base()
	return b != nil && b.Kind == paths.NullBase
}

// IsUninitRef reports whether p is the <uninit> marker location.
func IsUninitRef(p *paths.Path) bool {
	b := p.Base()
	return b != nil && b.Kind == paths.UninitBase
}

// IsHeapRef reports whether p denotes storage minted by an allocation
// site.
func IsHeapRef(p *paths.Path) bool {
	b := p.Base()
	return b != nil && b.Kind == paths.HeapBase
}

// IsLocalRef reports whether p denotes a local variable or parameter of
// some function (the storage that dies when its frame is popped).
func IsLocalRef(p *paths.Path) bool {
	b := p.Base()
	return b != nil && b.Kind == paths.VarBase && b.Local
}

// HeapReferents returns the distinct heap bases among the referents of
// the ε-path pairs on out, in first-seen order.
func (r *Result) HeapReferents(out *vdg.Output) []*paths.Base {
	var bases []*paths.Base
	seen := make(map[*paths.Base]bool)
	for _, ref := range r.Pairs(out).Referents() {
		if !IsHeapRef(ref) {
			continue
		}
		if b := ref.Base(); !seen[b] {
			seen[b] = true
			bases = append(bases, b)
		}
	}
	return bases
}
