package core_test

import (
	"testing"

	"aliaslab/internal/core"
	"aliaslab/internal/corpus"
	"aliaslab/internal/limits"
	"aliaslab/internal/oracle"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

// sameSets fails the test if the two result maps differ on any output.
func sameSets(t *testing.T, name, invariant string, g *vdg.Graph, a, b map[*vdg.Output]*core.PairSet) {
	t.Helper()
	for _, v := range oracle.EqualPerOutput(name, invariant, g, a, b) {
		t.Errorf("%s", v)
	}
}

// sameEdges fails the test if the discovered call graphs differ.
func sameEdges(t *testing.T, name string, g *vdg.Graph, a, b map[*vdg.Node][]*vdg.FuncGraph) {
	t.Helper()
	for _, fg := range g.Funcs {
		for _, call := range fg.Calls {
			am := make(map[*vdg.FuncGraph]bool)
			for _, c := range a[call] {
				am[c] = true
			}
			bm := make(map[*vdg.FuncGraph]bool)
			for _, c := range b[call] {
				bm[c] = true
			}
			if len(am) != len(bm) {
				t.Errorf("%s: call %v: %d vs %d callees", name, call, len(am), len(bm))
				continue
			}
			for c := range am {
				if !bm[c] {
					t.Errorf("%s: call %v: callee %s only on one side", name, call, c.Fn.Name)
				}
			}
		}
	}
}

// TestModularMatchesExhaustiveOnCorpus is the tentpole invariant: the
// per-procedure region solver computes exactly the whole-program CI
// fixpoint on every corpus unit, with no cache attached (every region
// solves cold, so this isolates the region decomposition itself).
func TestModularMatchesExhaustiveOnCorpus(t *testing.T) {
	for _, name := range corpus.Names() {
		u, err := corpus.Load(name, vdg.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		whole := core.AnalyzeInsensitive(u.Graph)
		mod, st := core.AnalyzeModular(u.Graph, core.ModularOptions{})
		if mod.Stopped != nil {
			t.Fatalf("%s: modular stopped: %v", name, mod.Stopped)
		}
		sameSets(t, name, "modular == exhaustive", u.Graph, mod.Sets, whole.Sets)
		sameEdges(t, name, u.Graph, mod.Callees, whole.Callees)
		if st.Procedures != len(u.Graph.Funcs) {
			t.Errorf("%s: Procedures = %d, want %d", name, st.Procedures, len(u.Graph.Funcs))
		}
		if st.Hits != 0 || st.Misses != st.Procedures {
			t.Errorf("%s: cacheless run should be all misses: %+v", name, st)
		}
	}
}

// TestModularDeterministicAcrossJobsAndStrategies: the result sets and
// every ModularStats counter are identical at every worker width and
// under every worklist strategy (the property that makes the summary
// counters safe in deterministic metrics snapshots).
func TestModularDeterministicAcrossJobsAndStrategies(t *testing.T) {
	for _, name := range []string{"bc", "compiler", "simulator"} {
		u, err := corpus.Load(name, vdg.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, refSt := core.AnalyzeModular(u.Graph, core.ModularOptions{Jobs: 1})
		for _, jobs := range []int{2, 8} {
			got, st := core.AnalyzeModular(u.Graph, core.ModularOptions{Jobs: jobs})
			sameSets(t, name, "jobs determinism", u.Graph, got.Sets, ref.Sets)
			if st.Rounds != refSt.Rounds || st.Misses != refSt.Misses || st.Forced != refSt.Forced {
				t.Errorf("%s: jobs=%d stats %+v != jobs=1 stats %+v", name, jobs, st, refSt)
			}
		}
		for _, strat := range []solver.Strategy{solver.LIFO, solver.Priority} {
			got, st := core.AnalyzeModular(u.Graph, core.ModularOptions{Strategy: strat, Jobs: 4})
			sameSets(t, name, "strategy determinism", u.Graph, got.Sets, ref.Sets)
			if st.Rounds != refSt.Rounds {
				t.Errorf("%s: strategy %v rounds %d != fifo rounds %d", name, strat, st.Rounds, refSt.Rounds)
			}
		}
	}
}

// TestModularBudgetStops: pooled step caps stop the modular solve with
// a Violation, like the whole-program solver.
func TestModularBudgetStops(t *testing.T) {
	u, err := corpus.Load("bc", vdg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := core.AnalyzeModular(u.Graph, core.ModularOptions{
		Budget: limits.Budget{MaxSteps: 100},
	})
	if res.Stopped == nil {
		t.Fatal("want Stopped under a 100-step budget")
	}
	if res.Stopped.Reason != limits.Steps {
		t.Fatalf("want Steps violation, got %v", res.Stopped.Reason)
	}
}
