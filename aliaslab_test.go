package aliaslab_test

import (
	"strings"
	"testing"

	"aliaslab"
)

const demo = `
int a, b;
int *p, *q;
void choose(int **dst, int *x, int *y, int c) {
	if (c) {
		*dst = x;
	} else {
		*dst = y;
	}
}
int main(void) {
	choose(&p, &a, &b, 1);
	choose(&q, &b, &b, 0);
	return *p;
}
`

func TestFacadePipeline(t *testing.T) {
	prog, err := aliaslab.ParseProgram("demo.c", demo, aliaslab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines, nodes, aliasOuts := prog.Sizes()
	if lines == 0 || nodes == 0 || aliasOuts == 0 {
		t.Fatalf("sizes: %d %d %d", lines, nodes, aliasOuts)
	}

	res, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	store := res.StoreAtExit()
	find := func(path string) []string {
		var refs []string
		for _, pt := range store {
			if pt.Path == path {
				refs = append(refs, pt.Referent)
			}
		}
		return refs
	}
	if got := strings.Join(find("p"), ","); got != "a,b" {
		t.Errorf("p -> %v, want a,b (CI merges both branches and calls)", got)
	}
	if got := strings.Join(find("q"), ","); got != "a,b" {
		t.Errorf("q -> %v, want a,b under CI pollution", got)
	}

	ops := res.IndirectOps()
	if len(ops) == 0 {
		t.Fatal("no indirect operations found")
	}
	var loads int
	for _, op := range ops {
		if op.Kind == "read" && op.Function == "main" {
			loads++
			if strings.Join(op.Referents, ",") != "a,b" {
				t.Errorf("*p reads %v", op.Referents)
			}
		}
	}
	if loads != 1 {
		t.Errorf("found %d reads in main, want 1", loads)
	}
}

func TestFacadeSensitivityComparison(t *testing.T) {
	prog, err := aliaslab.ParseProgram("demo.c", demo, aliaslab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := prog.AnalyzeContextSensitive(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	spurious, diffs := aliaslab.Compare(ci, cs)
	if spurious == 0 {
		t.Error("expected CI to carry spurious pairs on this program (q -> a)")
	}
	// The paper's phenomenon in miniature: the spurious q -> a pair is
	// never dereferenced, and *p legitimately reaches both targets (the
	// imprecision at p is a branch merge, not a context merge), so no
	// indirect operation differs.
	if diffs != 0 {
		t.Errorf("%d indirect operations differ; the pollution should be invisible to dereferences", diffs)
	}
	// The CS result can never exceed CI.
	if cs.TotalPairs() > ci.TotalPairs() {
		t.Errorf("CS has %d pairs, CI %d", cs.TotalPairs(), ci.TotalPairs())
	}
}

func TestFacadeBaselineIsCoarsest(t *testing.T) {
	prog, err := aliaslab.ParseProgram("demo.c", demo, aliaslab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := prog.Analyze()
	bl, err := prog.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	// The flow-insensitive baseline must not be more precise than CI at
	// indirect operations.
	ciOps := ci.IndirectOps()
	blOps := bl.IndirectOps()
	if len(ciOps) != len(blOps) {
		t.Fatalf("op counts differ: %d vs %d", len(ciOps), len(blOps))
	}
	for i := range ciOps {
		if len(blOps[i].Referents) < len(ciOps[i].Referents) {
			t.Errorf("baseline more precise than CI at %s", ciOps[i].Pos)
		}
	}
}

func TestFacadeModRefAndCallGraph(t *testing.T) {
	prog, err := aliaslab.ParseProgram("demo.c", demo, aliaslab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := prog.Analyze()
	mod, _, err := res.ModRef()
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(mod["choose"], ",")
	if got != "p,q" {
		t.Errorf("choose mods %q, want p,q", got)
	}
	cg, err := res.CallGraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(cg["main"]) != 2 {
		t.Errorf("main calls %v", cg["main"])
	}

	// Context-sensitive results keep the CI pre-pass, so the clients
	// remain available.
	cs, err := prog.AnalyzeContextSensitive(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.ModRef(); err != nil {
		t.Errorf("ModRef on a CS result: %v", err)
	}

	// The baseline never runs the CI pre-pass.
	bl, err := prog.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bl.ModRef(); err == nil {
		t.Error("ModRef on the baseline result must error")
	}
	if _, err := bl.CallGraph(); err == nil {
		t.Error("CallGraph on the baseline result must error")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	names := aliaslab.BenchmarkNames()
	if len(names) != 13 {
		t.Fatalf("corpus has %d programs", len(names))
	}
	prog, err := aliaslab.Benchmark("part", aliaslab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs() == 0 {
		t.Fatal("no pairs on part")
	}
	if _, err := aliaslab.Benchmark("nonexistent", aliaslab.Options{}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestFacadeParseErrors(t *testing.T) {
	if _, err := aliaslab.ParseProgram("bad.c", "int f( {", aliaslab.Options{}); err == nil {
		t.Fatal("syntax errors must be reported")
	}
	if _, err := aliaslab.ParseProgram("bad.c", "int main(void) { return undeclared; }", aliaslab.Options{}); err == nil {
		t.Fatal("semantic errors must be reported")
	}
}

func TestFacadeVet(t *testing.T) {
	prog, err := aliaslab.ParseProgram("vetme.c", `
int main(void) {
	int *p;
	p = (int *) malloc(4);
	free(p);
	*p = 1;
	return 0;
}
`, aliaslab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Vet()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range diags {
		if d.Checker == "uaf" && strings.Contains(d.Message, "after free") {
			found = true
			if d.Severity != "error" || len(d.Related) == 0 || !strings.Contains(d.Pos, "vetme.c:") {
				t.Errorf("malformed diagnostic: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("use-after-free not reported: %v", diags)
	}

	// Selecting a checker that cannot fire here yields no diagnostics.
	none, err := prog.Vet("dangling")
	if err != nil || len(none) != 0 {
		t.Fatalf("dangling on heap-only program: %v, err %v", none, err)
	}
	if _, err := prog.Vet("nosuch"); err == nil {
		t.Fatal("unknown checker must error")
	}

	// The vet rebuild must not perturb the paper's analysis results on
	// the original program.
	res, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.StoreAtExit() {
		if strings.Contains(pt.Referent, "<null>") || strings.Contains(pt.Referent, "<uninit>") {
			t.Fatalf("marker location leaked into plain analysis: %+v", pt)
		}
	}
}

func TestFacadeCheckers(t *testing.T) {
	ids := aliaslab.Checkers()
	for _, want := range []string{"uaf", "dangling", "nullderef", "uninit", "leak"} {
		if _, ok := ids[want]; !ok {
			t.Errorf("checker %q missing from Checkers()", want)
		}
	}
}
