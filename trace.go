package aliaslab

import (
	"io"
	"strings"

	"aliaslab/internal/driver"
	"aliaslab/internal/obs"
)

// Trace records the pipeline's phases — lex, parse, sema, VDG build,
// the solver attempts, checkers — as a tree of timed spans with
// allocation deltas. It is the public face of the internal
// observability layer: create one with NewTrace, thread it through
// ParseProgramTraced, then render with Text or WriteChromeTrace.
//
// A nil *Trace is valid everywhere one is accepted and records
// nothing; the untraced pipeline runs exactly the code it ran before
// tracing existed.
type Trace struct {
	tr *obs.Tracer
}

// NewTrace creates an empty trace. Spans it records carry wall time,
// allocation deltas (runtime.MemStats sampled at span boundaries), and
// pprof goroutine labels, so a CPU profile captured around a traced
// run attributes samples to pipeline phases.
func NewTrace() *Trace {
	return &Trace{tr: obs.New(obs.Config{MemStats: true, Labels: true})}
}

// internal unwraps the tracer; nil-safe so a nil *Trace threads
// through as the internal layer's nil tracer (the no-op hot path).
func (t *Trace) internal() *obs.Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// Text renders the recorded spans as an indented tree, one line per
// span with its duration, allocation delta, and attributes. Durations
// and allocation figures vary run to run; everything else is stable.
func (t *Trace) Text() string {
	var sb strings.Builder
	obs.WriteTree(&sb, t.internal())
	return sb.String()
}

// WriteChromeTrace writes the recorded spans in the Chrome trace_event
// JSON format (load via chrome://tracing or https://ui.perfetto.dev).
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, t.internal())
}

// ParseProgramTraced is ParseProgram with phase tracing: the front-end
// stages record spans under a per-unit root in t, and analysis calls
// on the returned Program add their solve spans to the same trace. A
// nil t traces nothing and behaves exactly like ParseProgram.
func ParseProgramTraced(name, src string, opts Options, t *Trace) (*Program, error) {
	sp := t.internal().StartSpan("unit", obs.Str("unit", name))
	defer sp.End()
	u, err := driver.LoadStringSpan(name, src, opts.internal(), sp)
	if err != nil {
		return nil, err
	}
	return &Program{unit: u, trace: t}, nil
}

// span opens a root solve span for one analysis call on p, tagged with
// the unit name. Returns nil (a no-op span) on untraced programs.
func (p *Program) span(name string) *obs.Span {
	return p.trace.internal().StartSpan(name, obs.Str("unit", p.unit.Name))
}
