#!/bin/sh
# server-smoke.sh — end-to-end smoke test of the aliaslabd daemon over
# a real socket: build, start, exercise every endpoint with curl
# (including a duplicate request to prove the cache), SIGTERM, and
# assert a clean drain. Exits non-zero on the first broken promise.
set -eu

PORT="${PORT:-7465}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

fail() { echo "server-smoke: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$DIR/aliaslabd" ./cmd/aliaslabd

echo "== start"
"$DIR/aliaslabd" -addr "127.0.0.1:$PORT" 2> "$DIR/server.log" &
SRV_PID=$!

# Wait for readiness.
i=0
until curl -sf "$BASE/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { cat "$DIR/server.log" >&2; fail "server not ready after 5s"; }
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$DIR/server.log" >&2; fail "server exited at startup"; }
    sleep 0.1
done

echo "== healthz"
curl -sf "$BASE/healthz" | grep -q ok || fail "healthz"

echo "== corpus listing"
curl -sf "$BASE/v1/corpus" | grep -q '"part"' || fail "corpus listing"

echo "== analyze (fresh)"
code=$(curl -s -o "$DIR/a1.json" -w '%{http_code}' -D "$DIR/h1.txt" \
    -X POST "$BASE/v1/analyze" -d '{"corpus":"part"}')
[ "$code" = 200 ] || fail "analyze: HTTP $code: $(cat "$DIR/a1.json")"
grep -q '"unit": "part.c"' "$DIR/a1.json" || fail "analyze body: $(cat "$DIR/a1.json")"
grep -qi 'x-aliaslab-cache: miss' "$DIR/h1.txt" || fail "first analyze not a cache miss"

echo "== analyze (duplicate -> cache hit, identical bytes)"
code=$(curl -s -o "$DIR/a2.json" -w '%{http_code}' -D "$DIR/h2.txt" \
    -X POST "$BASE/v1/analyze" -d '{"corpus":"part"}')
[ "$code" = 200 ] || fail "duplicate analyze: HTTP $code"
grep -qi 'x-aliaslab-cache: hit' "$DIR/h2.txt" || fail "duplicate analyze not a cache hit"
cmp -s "$DIR/a1.json" "$DIR/a2.json" || fail "cache hit bytes differ from fresh solve"

echo "== analyze with budget headers (degraded path)"
code=$(curl -s -o "$DIR/a3.json" -w '%{http_code}' \
    -X POST "$BASE/v1/analyze" -H 'X-Aliaslab-Max-Pairs: 10' -d '{"corpus":"compress"}')
[ "$code" = 503 ] || fail "tiny pair budget: HTTP $code, want 503"
grep -q '"degraded": true' "$DIR/a3.json" || fail "503 without degradation envelope"

echo "== vet"
code=$(curl -s -o "$DIR/v1.json" -w '%{http_code}' -X POST "$BASE/v1/vet" \
    -d '{"source":"int main(void) { int *p; p = malloc(4); free(p); return *p; }"}')
[ "$code" = 200 ] || fail "vet: HTTP $code"
grep -q '"checker": "uaf"' "$DIR/v1.json" || fail "vet missed the use-after-free: $(cat "$DIR/v1.json")"

echo "== invalid request"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/analyze" \
    -d '{"corpus":"part","backend":"steensgaard","worklist":"lifo"}')
[ "$code" = 400 ] || fail "steensgaard+worklist: HTTP $code, want 400"

echo "== metrics"
curl -sf "$BASE/metrics" | grep -q 'server.cache.hits' || fail "metrics missing cache counters"

echo "== drain on SIGTERM"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "server did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "$SRV_PID" && rc=0 || rc=$?
[ "$rc" = 0 ] || { cat "$DIR/server.log" >&2; fail "server exited $rc after SIGTERM, want 0"; }
grep -q 'drained, exiting' "$DIR/server.log" || fail "no clean-drain log line"

echo "server-smoke: PASS"
