// Modref: use the points-to solution the way a compiler would — compute
// which locations every function may read (ref) and write (mod), the
// client application the paper's Figure 4 is about.
//
// Run with: go run ./examples/modref
package main

import (
	"fmt"
	"log"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/modref"
	"aliaslab/internal/vdg"
)

const program = `
struct account {
	struct account *next;
	int balance;
	int id;
};

struct account *accounts;
int audit_total;

struct account *open_account(int id) {
	struct account *a;
	a = (struct account *) malloc(sizeof(struct account));
	a->id = id;
	a->balance = 0;
	a->next = accounts;
	accounts = a;
	return a;
}

void deposit(struct account *a, int amount) {
	a->balance += amount;
}

int audit(void) {
	struct account *a;
	int sum;
	sum = 0;
	for (a = accounts; a != 0; a = a->next) {
		sum += a->balance;
	}
	audit_total = sum;
	return sum;
}

int main(void) {
	struct account *first;
	struct account *second;
	first = open_account(1);
	second = open_account(2);
	deposit(first, 100);
	deposit(second, 250);
	return audit();
}
`

func main() {
	unit, err := driver.LoadString("bank.c", program, vdg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res := core.AnalyzeInsensitive(unit.Graph)
	info := modref.Compute(res)

	fmt.Println("per-function side effects (transitive, from points-to):")
	for _, fg := range unit.Graph.Funcs {
		if fg.Fn.Body == nil {
			continue
		}
		fmt.Printf("\n%s:\n", fg.Fn.Name)
		fmt.Print("  may write:")
		for _, p := range info.Mod[fg].Sorted() {
			fmt.Printf(" %s", p)
		}
		fmt.Println()
		fmt.Print("  may read: ")
		for _, p := range info.Ref[fg].Sorted() {
			fmt.Printf(" %s", p)
		}
		fmt.Println()
	}

	// The optimization question a compiler asks: can the two deposit
	// calls be reordered? Only if neither may write what the other
	// reads. Both write the same abstract location (the allocation
	// site), so the analysis must say no.
	fmt.Println("\ndeposit() writes the heap accounts; audit() reads them and")
	fmt.Println("writes audit_total — so calls to deposit cannot move past audit.")
}
