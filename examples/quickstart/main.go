// Quickstart: analyze a small C program with the context-insensitive
// points-to analysis and print what each pointer may reference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/vdg"
)

const program = `
int a, b;
int *p;
int **pp;

struct pairs { int *first; int *second; } s;

int main(void) {
	p = &a;          // p -> a
	pp = &p;         // pp -> p
	*pp = &b;        // strong update through pp: p -> b now
	s.first = p;     // s.first -> b
	s.second = &a;   // s.second -> a
	return *p;
}
`

func main() {
	// 1. Run the front end: lex, parse, typecheck, build the VDG.
	unit, err := driver.LoadString("quickstart.c", program, vdg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a VDG with %d nodes for %d functions\n\n",
		unit.Graph.NodeCount(), len(unit.Graph.Funcs))

	// 2. Run the paper's context-insensitive analysis (Figure 1).
	res := core.AnalyzeInsensitive(unit.Graph)
	fmt.Printf("analysis converged after %d transfer functions\n\n", res.Metrics.FlowIns)

	// 3. Inspect the store reaching main's return: every (location ->
	// referent) pair the analysis believes may hold there.
	fmt.Println("points-to pairs in the final store:")
	ret := unit.Graph.Entry.ReturnStore()
	for _, pair := range res.Pairs(ret).Sorted() {
		fmt.Printf("  %-10s -> %s\n", pair.Path, pair.Ref)
	}

	// 4. Ask what the indirect operations dereference.
	fmt.Println("\nindirect memory operations:")
	for _, fg := range unit.Graph.Funcs {
		for _, n := range fg.Nodes {
			if (n.Kind != vdg.KLookup && n.Kind != vdg.KUpdate) || !n.Indirect {
				continue
			}
			kind := "read "
			if n.Kind == vdg.KUpdate {
				kind = "write"
			}
			fmt.Printf("  %s at %-16s may touch:", kind, n.Pos)
			for _, r := range res.LocReferents(n) {
				fmt.Printf(" %s", r)
			}
			fmt.Println()
		}
	}
}
