// Sensitivity: reproduce the paper's central comparison on two small
// programs — one crafted so that context sensitivity wins, and one
// (shaped like the paper's `part` benchmark) where the extra precision
// evaporates because the data genuinely mixes at run time.
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/stats"
	"aliaslab/internal/vdg"
)

// sensitiveWins: a single setter serving two unrelated callers. The
// context-insensitive analysis merges both call sites, so it believes
// pa may point to b (and pb to a); the context-sensitive analysis keeps
// the sites apart.
const sensitiveWins = `
int a, b;
int *pa, *pb;
void set(int **r, int *v) { *r = v; }
int main(void) {
	set(&pa, &a);
	set(&pb, &b);
	return *pa;   // CI says this may read b; CS knows it reads only a
}
`

// mixingNeutralizes: the part phenomenon (paper §5.2). Two lists share
// push/pop — and exchange elements, so each list's cells really can
// hold the other's values. The "pollution" is the truth.
const mixingNeutralizes = `
struct cell { struct cell *next; int v; };
struct cell *xs, *ys;
void push(struct cell **l, struct cell *c) { c->next = *l; *l = c; }
struct cell *pop(struct cell **l) {
	struct cell *c;
	c = *l;
	if (c) *l = c->next;
	return c;
}
int main(void) {
	int i;
	for (i = 0; i < 3; i++) {
		push(&xs, (struct cell *) malloc(sizeof(struct cell)));
		push(&ys, (struct cell *) malloc(sizeof(struct cell)));
	}
	push(&xs, pop(&ys)); // exchange: the lists really mix
	push(&ys, pop(&xs));
	return 0;
}
`

func compare(name, src string) {
	unit, err := driver.LoadString(name+".c", src, vdg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ci := core.AnalyzeInsensitive(unit.Graph)
	cs := core.AnalyzeSensitive(unit.Graph, core.SensitiveOptions{CI: ci, MaxSteps: 10_000_000})
	if cs.Aborted {
		log.Fatalf("%s: context-sensitive analysis did not converge in bound", name)
	}
	csSets := cs.Strip()

	ciCensus := stats.Census(unit.Graph, ci.Sets)
	csCensus := stats.Census(unit.Graph, csSets)
	spurious := ciCensus.Total - csCensus.Total

	fmt.Printf("== %s\n", name)
	fmt.Printf("   pairs: CI %d, CS %d  (%d spurious, %.1f%%)\n",
		ciCensus.Total, csCensus.Total, spurious,
		100*float64(spurious)/float64(ciCensus.Total))

	diff := stats.IndirectDiff(unit.Graph, ci.Sets, csSets)
	if len(diff) == 0 {
		fmt.Printf("   indirect operations: identical referents under CI and CS\n")
	} else {
		fmt.Printf("   indirect operations: %d differ — context sensitivity buys precision here:\n", len(diff))
		for _, n := range diff {
			ciRefs := ci.Pairs(n.Loc()).Referents()
			var csRefs int
			if s := csSets[n.Loc()]; s != nil {
				csRefs = len(s.Referents())
			}
			fmt.Printf("     %s at %s: CI %d referents, CS %d\n", n.Kind, n.Pos, len(ciRefs), csRefs)
		}
	}
	fmt.Println()
}

func main() {
	fmt.Println("The paper's question: does context sensitivity buy precision where")
	fmt.Println("it matters (at indirect memory operations)?")
	fmt.Println()
	compare("sensitive-wins", sensitiveWins)
	compare("mixing-neutralizes", mixingNeutralizes)
	fmt.Println("The corpus programs behave like the second case: run")
	fmt.Println("  go run ./cmd/experiments -fig 6")
	fmt.Println("to see the full-benchmark version of this comparison.")
}
