// Strongupdate: demonstrate the strong-update machinery — the
// singleton-set-as-definite rule of [CWZ90] that the analyses inherit —
// and the ablation switches that weaken it.
//
// Run with: go run ./examples/strongupdate
package main

import (
	"fmt"
	"log"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/vdg"
)

const program = `
int a, b, c;
int *p;
int *q;

int main(void) {
	int cond;
	cond = 1;

	p = &a;     // p -> {a}
	p = &b;     // strong update: p -> {b}, the a-pair is killed

	q = &a;
	if (cond) {
		q = &c; // one arm reassigns...
	}
	*q = 1;     // ...so q -> {a, c}: two possible locations, and the
	            // write through q cannot strongly update either

	return 0;
}
`

func describe(label string, opts vdg.Options) {
	unit, err := driver.LoadString("strong.c", program, opts)
	if err != nil {
		log.Fatal(err)
	}
	res := core.AnalyzeInsensitive(unit.Graph)
	ret := unit.Graph.Entry.ReturnStore()

	fmt.Printf("== %s\n", label)
	for _, pair := range res.Pairs(ret).Sorted() {
		if base := pair.Path.Base(); base != nil && (base.Name == "p" || base.Name == "q") {
			fmt.Printf("   %s -> %s\n", pair.Path, pair.Ref)
		}
	}
	fmt.Println()
}

func main() {
	fmt.Println("Strong updates: a write through a pointer that definitely refers")
	fmt.Println("to a single location kills that location's previous contents.")
	fmt.Println()

	// Default build: p is a single-location global, so 'p = &b' kills
	// the earlier a-pair and only p -> b remains.
	describe("default (strong updates apply)", vdg.Options{})

	// Ablation: -nossa keeps every scalar in the store. The result for
	// p and q is unchanged (they are globals either way), but the store
	// now also tracks cond and the locals — the representation the
	// paper's SSA-like transformation removes.
	describe("nossa ablation (scalars stay in the store)", vdg.Options{NoSSA: true})

	fmt.Println("Note how q keeps both referents in every variant: with two")
	fmt.Println("possible targets the write '*q = 1' must be a weak update.")
}
