// Command benchdiff compares two `go test -bench` output files and
// prints a benchstat-style table: geometric-mean ns/op per benchmark,
// the delta, and benchmarks present on only one side. It is the
// zero-dependency fallback `make bench-compare` uses when benchstat is
// not installed; it reports central tendency only, no significance
// test — install golang.org/x/perf/cmd/benchstat for that.
//
// Usage:
//
//	benchdiff old.txt new.txt
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// samples collects the ns/op readings of one benchmark across -count
// repetitions, keyed by benchmark name with the -cpu suffix kept (the
// suffix distinguishes genuinely different configurations).
type samples map[string][]float64

// parse extracts benchmark result lines:
//
//	BenchmarkSolveCI/fifo-8   	     100	   7774814 ns/op	  14391 pair-inserts
func parse(path string) (samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(samples)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err == nil && v > 0 {
				out[fields[0]] = append(out[fields[0]], v)
			}
			break
		}
	}
	return out, sc.Err()
}

func geomean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func human(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fns", ns)
	}
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff old.txt new.txt")
		os.Exit(2)
	}
	old, err := parse(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	new_, err := parse(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(old)+len(new_))
	seen := make(map[string]bool)
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range new_ {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-50s %12s %12s %9s\n", "benchmark (geomean ns/op)", "old", "new", "delta")
	for _, n := range names {
		o, haveOld := old[n]
		nw, haveNew := new_[n]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%-50s %12s %12s %9s\n", n, "-", human(geomean(nw)), "new")
		case !haveNew:
			fmt.Fprintf(w, "%-50s %12s %12s %9s\n", n, human(geomean(o)), "-", "gone")
		default:
			og, ng := geomean(o), geomean(nw)
			fmt.Fprintf(w, "%-50s %12s %12s %+8.2f%%\n", n, human(og), human(ng), 100*(ng-og)/og)
		}
	}
}
