// Command corpusgen generates seeded populations of valid mini-C
// programs and checks the analysis oracle over them.
//
// Usage:
//
//	corpusgen -n 1000 -seed 42            # stream 1000 programs to stdout
//	corpusgen -n 1000 -seed 42 -jobs 8    # same bytes, generated on 8 workers
//	corpusgen -n 20 -dir out/             # one .c file per program instead
//	corpusgen -n 200 -check               # run the full oracle lattice per unit
//	corpusgen -n 200 -check -out repro/   # ...and write shrunk reproducers there
//
// The stream on stdout pipes into `experiments -population`. Output is
// a pure function of (-seed, -n): byte-identical on any machine, at any
// -jobs width. -check runs every theorem invariant (CS ⊆ CI ⊆ Andersen
// ⊆ Steensgaard, the widening lattice, governed-full, worklist-strategy
// confluence) on every generated unit, plus a batch-determinism probe
// (the population JSON at -jobs 1 versus the requested width); a
// failing unit is greedily shrunk to a minimal reproducer, written as
// both a .c file and a Go fuzz corpus entry, and flips the exit status
// to 1.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"aliaslab/internal/corpusgen"
	"aliaslab/internal/experiments"
	"aliaslab/internal/sched"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 100, "population size")
	seed := fs.Int64("seed", 42, "population seed")
	jobs := fs.Int("jobs", 0, "workers for generation and checking (0 = GOMAXPROCS)")
	dir := fs.String("dir", "", "write one <unit>.c file per program into this directory instead of streaming")
	check := fs.Bool("check", false, "run the full oracle lattice on every generated unit")
	out := fs.String("out", "", "with -check: write shrunk reproducers of failing units into this directory")
	minimize := fs.Bool("minimize", false, "with -dir: shrink each program to its minimal still-loading core before writing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "corpusgen: -n must be positive")
		return 2
	}

	// Generation is order-free: worker i writes slot i, and the stream
	// renders from the slots in index order, so the bytes match the
	// sequential run at any width.
	progs := make([]corpusgen.Program, *n)
	sched.Pool{Jobs: *jobs}.Map(context.Background(), *n, func(_ context.Context, i int) error {
		progs[i] = corpusgen.Generate(*seed, i, corpusgen.SweepKnobs(*seed, i))
		return nil
	})

	switch {
	case *check:
		return runCheck(progs, *jobs, *out, stdout, stderr)
	case *dir != "":
		return writeDir(progs, *dir, *minimize, stderr)
	default:
		if err := corpusgen.WriteStream(stdout, *seed, progs); err != nil {
			fmt.Fprintln(stderr, "corpusgen:", err)
			return 1
		}
		return 0
	}
}

// writeDir writes each program as its own .c file, optionally shrunk to
// the minimal text the front end still accepts and that still contains
// an indirect operation (a compact corpus rather than a failing one).
func writeDir(progs []corpusgen.Program, dir string, minimize bool, stderr io.Writer) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, "corpusgen:", err)
		return 1
	}
	for _, p := range progs {
		src := p.Source
		if minimize {
			src = corpusgen.ShrinkValid(p)
		}
		if err := os.WriteFile(filepath.Join(dir, p.Name+".c"), []byte(src), 0o644); err != nil {
			fmt.Fprintln(stderr, "corpusgen:", err)
			return 1
		}
	}
	return 0
}

// runCheck drives the oracle over the population on a worker pool, then
// probes batch determinism: the population JSON must be byte-identical
// at -jobs 1 and the requested width. Failing units are shrunk and
// written as reproducers.
func runCheck(progs []corpusgen.Program, jobs int, out string, stdout, stderr io.Writer) int {
	results := make([]corpusgen.CheckResult, len(progs))
	sched.Pool{Jobs: jobs}.Map(context.Background(), len(progs), func(_ context.Context, i int) error {
		results[i] = corpusgen.CheckUnit(progs[i])
		return nil
	})

	bad := 0
	for i, res := range results {
		if res.OK() {
			continue
		}
		bad++
		if res.LoadErr != nil {
			fmt.Fprintf(stderr, "corpusgen: %s: %v\n", res.Name, res.LoadErr)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(stderr, "corpusgen: %s\n", v)
		}
		if out != "" {
			shrunk := corpusgen.Shrink(progs[i].Source, corpusgen.StillFails(progs[i]))
			path, err := corpusgen.WriteRepro(out, res.Name, shrunk)
			if err != nil {
				fmt.Fprintln(stderr, "corpusgen:", err)
				return 1
			}
			fmt.Fprintf(stderr, "corpusgen: %s: reproducer shrunk %d -> %d bytes: %s\n",
				res.Name, len(progs[i].Source), len(shrunk), path)
		}
	}

	// Batch determinism: the rendered population study must not depend
	// on the worker width.
	seq, err := populationJSON(progs, 1)
	if err != nil {
		fmt.Fprintln(stderr, "corpusgen:", err)
		return 1
	}
	par, err := populationJSON(progs, jobs)
	if err != nil {
		fmt.Fprintln(stderr, "corpusgen:", err)
		return 1
	}
	determinism := "ok"
	if !bytes.Equal(seq, par) {
		determinism = "FAILED"
		bad++
		fmt.Fprintf(stderr, "corpusgen: population JSON differs between -jobs 1 and -jobs %d\n", jobs)
	}

	fmt.Fprintf(stdout, "checked %d units: %d failed; batch determinism %s\n", len(progs), bad, determinism)
	if bad > 0 {
		return 1
	}
	return 0
}

func populationJSON(progs []corpusgen.Program, jobs int) ([]byte, error) {
	res, err := experiments.RunPopulation(progs, experiments.PopulationOptions{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := experiments.WritePopulationJSON(&buf, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
