package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStreamDeterministicAcrossJobs: the streamed bytes are identical
// at every -jobs width.
func TestStreamDeterministicAcrossJobs(t *testing.T) {
	render := func(jobs string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-n", "50", "-seed", "42", "-jobs", jobs}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	ref := render("1")
	for _, jobs := range []string{"4", "9"} {
		if render(jobs) != ref {
			t.Fatalf("stream differs between -jobs 1 and -jobs %s", jobs)
		}
	}
	if !strings.HasPrefix(ref, "# corpusgen stream v1 seed=42 n=50\n") {
		t.Fatalf("unexpected stream header: %q", ref[:40])
	}
}

// TestCheckClean: the oracle passes over a generated population and the
// batch-determinism probe agrees, with no reproducers written.
func TestCheckClean(t *testing.T) {
	out := filepath.Join(t.TempDir(), "repro")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "20", "-seed", "42", "-check", "-out", out, "-jobs", "4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "checked 20 units: 0 failed; batch determinism ok") {
		t.Fatalf("unexpected summary: %q", stdout.String())
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("clean check created the reproducer directory: %v", err)
	}
}

// TestDirMode: -dir writes one loadable .c file per unit.
func TestDirMode(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "5", "-seed", "7", "-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 5 {
		t.Fatalf("wrote %d files, want 5", len(ents))
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "gen-s7-i") || !strings.HasSuffix(e.Name(), ".c") {
			t.Fatalf("unexpected file %q", e.Name())
		}
	}
}

// TestBadFlags: invalid invocations exit 2 without output on stdout.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{{"-n", "0"}, {"-bogus"}} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2", args, code)
		}
		if stdout.Len() != 0 {
			t.Fatalf("run(%v) wrote to stdout: %q", args, stdout.String())
		}
	}
}
