// Command aliaslabd serves the alias analyses over HTTP.
//
// Usage:
//
//	aliaslabd [-addr :7465] [flags]
//
// Endpoints:
//
//	POST /v1/analyze   {"source"|"corpus", "backend", "worklist", "modular"}
//	POST /v1/vet       {"source"|"corpus", "backend", "checkers", "modular"}
//	GET  /v1/corpus    list the embedded benchmark programs
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 once draining)
//	GET  /metrics      server + analysis metrics as JSON
//
// Per-request budgets come from the X-Aliaslab-Max-Steps,
// X-Aliaslab-Max-Pairs, and X-Aliaslab-Timeout-Ms headers, clamped by
// the server-side -max-steps / -max-pairs / -max-timeout ceilings.
// Responses map the degradation ladder onto HTTP status codes: 200
// full answer, 206 sound degraded answer (machine-readable envelope in
// the body), 429 over capacity (with Retry-After), 500 isolated
// internal error, 503 budget blown mid-flight.
//
// Requests that set "modular": true (ci backend only) solve bottom-up
// from per-procedure summaries and share a process-lifetime summary
// cache, so re-submitting an edited source re-solves only the
// procedures the edit touched. -incremental=false disables that cache;
// the answers are identical either way.
//
// SIGTERM or SIGINT drains: /readyz flips to 503, in-flight requests
// finish (up to -drain-timeout), then the process exits 0.
//
// -faults (or ALIASLAB_FAULTS) arms deterministic fault injection for
// chaos testing; see internal/faults for the spec grammar. Never set
// it in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aliaslab/internal/faults"
	"aliaslab/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("aliaslabd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":7465", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 0, "analyses in flight before 429 (0 = 2×GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 256, "result cache capacity (negative disables)")
	maxSource := fs.Int64("max-source-bytes", 1<<20, "request body size limit")
	maxSteps := fs.Int("max-steps", 50_000_000, "ceiling on the per-request step budget (0 = server default)")
	maxPairs := fs.Int("max-pairs", 0, "ceiling on the per-request pair budget (0 = unlimited)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "ceiling on the per-request wall-clock budget")
	defaultTimeout := fs.Duration("default-timeout", 10*time.Second, "wall-clock budget when the request sends none")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	incremental := fs.Bool("incremental", true, "share a per-procedure summary cache across modular requests")
	summaryRecords := fs.Int("summary-records", 0, "summary cache capacity in records (0 = default bound; ignored with -incremental=false)")
	faultSpec := fs.String("faults", os.Getenv("ALIASLAB_FAULTS"), "fault-injection spec for chaos testing (default $ALIASLAB_FAULTS)")
	faultSeed := fs.Int64("faults-seed", 0, "deterministic phase rotation for -faults rules")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintln(stderr, "aliaslabd: unexpected arguments:", fs.Args())
		return 2
	}

	inj, err := faults.Parse(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(stderr, "aliaslabd:", err)
		return 2
	}
	if inj != nil {
		fmt.Fprintf(stderr, "aliaslabd: fault injection ARMED at stages %v — not for production\n", inj.Stages())
	}

	records := *summaryRecords
	if !*incremental {
		records = -1
	}
	srv := server.New(server.Config{
		MaxConcurrent:  *maxConcurrent,
		CacheEntries:   *cacheEntries,
		MaxSourceBytes: *maxSource,
		MaxSteps:       *maxSteps,
		MaxPairs:       *maxPairs,
		MaxTimeout:     *maxTimeout,
		DefaultTimeout: *defaultTimeout,
		SummaryRecords: records,
		Faults:         inj,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "aliaslabd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "aliaslabd: listening on %s\n", ln.Addr())

	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "aliaslabd:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop admitting work, let in-flight analyses finish, then
	// close. Shutdown waits for active connections up to the grace
	// period; a second signal is not needed for a clean exit.
	fmt.Fprintln(stderr, "aliaslabd: draining")
	srv.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "aliaslabd: shutdown:", err)
		return 1
	}
	fmt.Fprintln(stderr, "aliaslabd: drained, exiting")
	return 0
}
