// Command experiments regenerates every table and figure of the paper's
// evaluation over the embedded benchmark corpus.
//
// Usage:
//
//	experiments              # all figures + cost table
//	experiments -fig 4       # one figure (2, 3, 4, 6, or 7)
//	experiments -costs       # CI vs CS work/time comparison only
//	experiments -json        # machine-readable summary (deterministic)
//	experiments -jobs 8      # analyze corpus units on 8 workers
//	experiments -timing      # per-unit wall times + parallel speedup
//	experiments -worklist lifo   # solver worklist: fifo (default), lifo, priority
//	experiments -backend frontier    # four-way precision/cost frontier table
//	experiments -backend andersen    # also solve each unit with one constraint backend
//	experiments -modular     # bottom-up summary solve per unit + warm-reuse table
//	experiments -queries     # demand-query sweep per unit + demand-vs-exhaustive table
//	experiments -stats       # append solver engine counters (or embed in -json)
//	experiments -metrics     # collect batch metrics (table, or embed in -json)
//	experiments -trace       # phase span tree on stderr
//	experiments -trace-out f # Chrome trace_event file (load in about:tracing)
//	experiments -cpuprofile f  # pprof CPU profile with per-phase labels
//	experiments -memprofile f  # pprof heap profile at exit
//	experiments -nossa       # ablation: keep scalars in the store
//	experiments -singleheap  # ablation: one heap base for all sites
//	corpusgen -n 2000 -seed 42 | experiments -population   # agreement distribution over a generated population
//
// The corpus units analyze on a bounded worker pool (-jobs, default
// GOMAXPROCS); results merge back in the corpus' canonical order, so
// every figure and the JSON summary are byte-identical at any -jobs
// value, including the sequential -jobs=1 run. The observability flags
// keep that guarantee: only Deterministic-stability metrics reach the
// JSON summary; wall-clock and visit-order quantities render on stderr
// and in the trace file only.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"aliaslab/internal/backend"
	"aliaslab/internal/corpus"
	"aliaslab/internal/corpusgen"
	"aliaslab/internal/experiments"
	"aliaslab/internal/obs"
	"aliaslab/internal/report"
	"aliaslab/internal/solver"
	"aliaslab/internal/vdg"
)

func main() { os.Exit(run()) }

func run() int {
	fig := flag.Int("fig", 0, "render one figure (2, 3, 4, 6, 7); 0 = everything")
	costs := flag.Bool("costs", false, "render only the CI vs CS cost comparison")
	jsonOut := flag.Bool("json", false, "render the machine-readable JSON summary instead of figures")
	jobs := flag.Int("jobs", 0, "corpus units analyzed concurrently (0 = GOMAXPROCS, 1 = sequential)")
	timing := flag.Bool("timing", false, "append per-unit wall times and the aggregate parallel speedup")
	worklist := flag.String("worklist", "", "solver worklist strategy: fifo (default), lifo, or priority")
	backendFlag := flag.String("backend", "", "run a constraint backend per unit (andersen, steensgaard) or render the four-way frontier table (frontier)")
	modular := flag.Bool("modular", false, "also solve each unit bottom-up from per-procedure summaries, oracle-checked against the exhaustive answer; appends the warm-reuse table (embedded in the summary with -json)")
	queries := flag.Bool("queries", false, "also sweep each unit's variables through the demand-driven query engine, cross-checked against the exhaustive answer; appends the demand-vs-exhaustive table")
	statsOut := flag.Bool("stats", false, "append the solver engine counters (embedded in the summary with -json)")
	metricsOut := flag.Bool("metrics", false, "collect batch metrics: table on stdout, or the deterministic subset embedded in the -json summary")
	traceOn := flag.Bool("trace", false, "record phase spans and print the span tree to stderr")
	traceOut := flag.String("trace-out", "", "write the phase spans as a Chrome trace_event file (implies -trace)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (with per-phase pprof labels) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	noSSA := flag.Bool("nossa", false, "ablation: keep non-addressed scalars in the store")
	singleHeap := flag.Bool("singleheap", false, "ablation: name all heap storage with one base")
	population := flag.Bool("population", false, "read a corpusgen stream on stdin and render the population agreement study (JSON with -json)")
	flag.Parse()

	strategy, err := solver.ParseStrategy(*worklist)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	frontier := *backendFlag == "frontier"
	var backendKind backend.Kind
	if !frontier {
		backendKind, err = backend.ParseKind(*backendFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err, "(or frontier)")
			return 2
		}
		if backendKind == backend.CS {
			// -backend cs is the existing CS batch, not an extra solve.
			backendKind = backend.CI
		}
	}

	tracing := *traceOn || *traceOut != ""
	var tr *obs.Tracer
	if tracing || *cpuprofile != "" {
		// MemStats deltas only when a human will read the tree; pprof
		// labels always, so a CPU profile attributes samples to phases.
		tr = obs.New(obs.Config{MemStats: tracing, Labels: true})
	}
	var reg *obs.Registry
	if *metricsOut {
		reg = obs.NewRegistry()
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer stop()
	}

	opts := vdg.Options{NoSSA: *noSSA, SingleHeapBase: *singleHeap}

	if *population {
		// The population study replaces the corpus: the units come from a
		// corpusgen stream on stdin (`corpusgen -n 2000 -seed 42 |
		// experiments -population`), and the rendering is the agreement
		// distribution rather than the paper's per-benchmark figures.
		progs, err := corpusgen.ReadStream(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		res, err := experiments.RunPopulation(progs, experiments.PopulationOptions{
			Jobs: *jobs, Opts: opts, Strategy: strategy,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		if *jsonOut {
			if err := experiments.WritePopulationJSON(os.Stdout, res); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
		} else {
			experiments.WritePopulation(os.Stdout, res)
		}
		if len(res.Failed) > 0 {
			return 1
		}
		return 0
	}

	needCS := *costs || *jsonOut || *fig == 0 || *fig == 6 || *fig == 7

	if frontier {
		rows, skipped, err := experiments.RunFrontier(corpus.Names(), experiments.BatchOptions{
			Opts: opts, Jobs: *jobs, Strategy: strategy, Trace: tr, Metrics: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		for _, name := range skipped {
			fmt.Fprintf(os.Stderr, "experiments: %s skipped: no converged CS reference\n", name)
		}
		experiments.Frontier(os.Stdout, rows)
		if tracing {
			obs.WriteTree(os.Stderr, tr)
		}
		if len(skipped) > 0 {
			return 1
		}
		return 0
	}

	t0 := time.Now()
	rs, err := experiments.RunBatch(corpus.Names(), experiments.BatchOptions{
		WithCS: needCS, Opts: opts, Jobs: *jobs, Strategy: strategy,
		Trace: tr, Metrics: reg, Backend: backendKind, Modular: *modular, Queries: *queries,
	})
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	// Per-unit failures don't stop the batch: report them, render the
	// figures for the programs that did analyze. A capped unit gets its
	// own marker — a CS run stopped at its step bound is not converged
	// and must not pass silently for one that is.
	failed := experiments.Failures(rs)
	for _, r := range failed {
		fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.Name, r.Err)
		if r.Capped {
			fmt.Fprintf(os.Stderr, "experiments: %s: capped — context-sensitive analysis stopped before convergence; its results are an under-approximation\n", r.Name)
		}
	}

	w := os.Stdout
	rsp := tr.StartSpan("report")
	switch {
	case *jsonOut:
		if err := experiments.WriteJSONWith(w, rs, experiments.JSONOptions{EngineStats: *statsOut, Metrics: reg}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	case *costs:
		experiments.Costs(w, rs)
	case *fig == 2:
		experiments.Figure2(w, rs)
	case *fig == 3:
		experiments.Figure3(w, rs)
	case *fig == 4:
		experiments.Figure4(w, rs)
	case *fig == 6:
		experiments.Figure6(w, rs)
	case *fig == 7:
		experiments.Figure7(w, rs)
	case *fig != 0:
		fmt.Fprintln(os.Stderr, "experiments: unknown figure", *fig)
		return 2
	default:
		experiments.WriteAll(w, rs)
	}
	if *modular && !*jsonOut {
		fmt.Fprintln(w)
		experiments.Incremental(w, rs)
	}
	if *queries && !*jsonOut {
		fmt.Fprintln(w)
		experiments.QueryCosts(w, rs)
	}
	if *statsOut && !*jsonOut {
		fmt.Fprintln(w)
		experiments.EngineStats(w, rs)
	}
	if *metricsOut && !*jsonOut {
		// The text table shows everything, Volatile metrics included —
		// it is a diagnostic, not a golden surface.
		fmt.Fprintln(w)
		report.Metrics(w, reg.Snapshot())
	}
	if *timing && !*jsonOut {
		fmt.Fprintln(w)
		experiments.Timing(w, rs, wall, effectiveJobs(*jobs))
	}
	rsp.End()

	if tracing {
		obs.WriteTree(os.Stderr, tr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = obs.WriteChromeTrace(f, tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}
	if len(failed) > 0 {
		return 1
	}
	return 0
}

// effectiveJobs mirrors the pool's default so the timing table reports
// the width that actually ran.
func effectiveJobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}
