// Command experiments regenerates every table and figure of the paper's
// evaluation over the embedded benchmark corpus.
//
// Usage:
//
//	experiments              # all figures + cost table
//	experiments -fig 4       # one figure (2, 3, 4, 6, or 7)
//	experiments -costs       # CI vs CS work/time comparison only
//	experiments -nossa       # ablation: keep scalars in the store
//	experiments -singleheap  # ablation: one heap base for all sites
package main

import (
	"flag"
	"fmt"
	"os"

	"aliaslab/internal/experiments"
	"aliaslab/internal/vdg"
)

func main() {
	fig := flag.Int("fig", 0, "render one figure (2, 3, 4, 6, 7); 0 = everything")
	costs := flag.Bool("costs", false, "render only the CI vs CS cost comparison")
	noSSA := flag.Bool("nossa", false, "ablation: keep non-addressed scalars in the store")
	singleHeap := flag.Bool("singleheap", false, "ablation: name all heap storage with one base")
	flag.Parse()

	opts := vdg.Options{NoSSA: *noSSA, SingleHeapBase: *singleHeap}
	needCS := *costs || *fig == 0 || *fig == 6 || *fig == 7

	rs, err := experiments.RunAll(needCS, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// Per-unit failures don't stop the batch: report them, render the
	// figures for the programs that did analyze.
	failed := experiments.Failures(rs)
	for _, r := range failed {
		fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.Name, r.Err)
	}

	w := os.Stdout
	switch {
	case *costs:
		experiments.Costs(w, rs)
	case *fig == 2:
		experiments.Figure2(w, rs)
	case *fig == 3:
		experiments.Figure3(w, rs)
	case *fig == 4:
		experiments.Figure4(w, rs)
	case *fig == 6:
		experiments.Figure6(w, rs)
	case *fig == 7:
		experiments.Figure7(w, rs)
	case *fig != 0:
		fmt.Fprintln(os.Stderr, "experiments: unknown figure", *fig)
		os.Exit(2)
	default:
		experiments.WriteAll(w, rs)
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}
