package main

// CLI tests for the resource-governance flags: -timeout, -max-steps,
// -max-pairs, the degraded label in analysis output, and the degraded
// vet exit status / JSON shape.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"aliaslab/internal/core"
	"aliaslab/internal/driver"
	"aliaslab/internal/vdg"
)

// swapRecCLISrc mirrors the adversarial fixture of the core degradation
// tests: wide fan-in to a recursive pointer-swapping procedure, which
// defeats the §4.2 single-location pruning and makes the exact
// context-sensitive analysis strictly more expensive than CI.
func swapRecCLISrc(k int) string {
	var sb strings.Builder
	sb.WriteString("int c;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "int t%d;\n", i)
	}
	sb.WriteString(`
void fill(int **p, int **q) {
  int *tmp;
  if (c) { fill(q, p); }
  tmp = *p;
  *p = *q;
  *q = tmp;
}
int main() {
  int *u; int *v;
`)
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "  if (c == %d) { u = &t%d; } else { v = &t%d; }\n", i, i, i)
	}
	sb.WriteString("  fill(&u, &v);\n  fill(&v, &u);\n  return **(&u);\n}\n")
	return sb.String()
}

// measureWork returns the flow-in counts of the exact CI and exact CS
// analyses so tests can place budgets between them instead of
// hardcoding step counts.
func measureWork(t *testing.T, src string) (ciIns, csIns int) {
	t.Helper()
	u, err := driver.LoadString("m.c", src, vdg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ci := core.AnalyzeInsensitive(u.Graph)
	cs := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci})
	return ci.Metrics.FlowIns, cs.Metrics.FlowIns
}

func TestCSDegradesInsteadOfFailing(t *testing.T) {
	src := swapRecCLISrc(12)
	ciIns, csIns := measureWork(t, src)
	if ciIns >= csIns {
		t.Fatalf("fixture not adversarial: CI %d >= CS %d flow-ins", ciIns, csIns)
	}
	budget := (ciIns + csIns) / 2
	path := writeTemp(t, src)

	out, stderr, code := runCLI(t, "-analysis", "cs", "-max-steps", fmt.Sprint(budget), "-print", "pointsto", path)
	if code != 0 {
		t.Fatalf("degraded-but-sound run must exit 0, got %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "(degraded:") {
		t.Fatalf("degraded run not labeled in output:\n%s", out)
	}
	if !strings.Contains(stderr, "stopped early") {
		t.Fatalf("degradation trace missing from stderr:\n%s", stderr)
	}
}

func TestPartialCIExitsNonzeroAndWarns(t *testing.T) {
	src := swapRecCLISrc(12)
	ciIns, _ := measureWork(t, src)
	path := writeTemp(t, src)

	out, stderr, code := runCLI(t, "-analysis", "ci", "-max-steps", fmt.Sprint(ciIns/2), "-print", "pointsto", path)
	if code != 1 {
		t.Fatalf("unsound partial CI must exit 1, got %d", code)
	}
	if !strings.Contains(stderr, "NOT a sound") {
		t.Fatalf("missing soundness warning on stderr:\n%s", stderr)
	}
	if !strings.Contains(out, "partial-ci") {
		t.Fatalf("partial tier not labeled in output:\n%s", out)
	}
}

func TestMaxPairsFlagTripsBudget(t *testing.T) {
	path := writeTemp(t, swapRecCLISrc(12))
	_, stderr, code := runCLI(t, "-analysis", "ci", "-max-pairs", "3", "-print", "pointsto", path)
	if code != 1 || !strings.Contains(stderr, "pair budget") {
		t.Fatalf("pair cap not enforced: code=%d stderr:\n%s", code, stderr)
	}
}

func TestDefaultFlagsDoNotDegrade(t *testing.T) {
	path := writeTemp(t, swapRecCLISrc(6))
	out, stderr, code := runCLI(t, "-analysis", "cs", "-print", "pointsto", path)
	if code != 0 || strings.Contains(out, "degraded") || stderr != "" {
		t.Fatalf("defaults degraded: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}

func TestVetDegradedJSONShapeAndExitCode(t *testing.T) {
	path := writeTemp(t, leakSrc)
	out, stderr, code := runCLI(t, "-vet", "-format", "json", "-max-pairs", "1", path)
	if code != 3 {
		t.Fatalf("degraded vet must exit 3, got %d, stderr: %s", code, stderr)
	}
	var wrapped struct {
		Degraded    bool              `json:"degraded"`
		Reason      string            `json:"reason"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &wrapped); err != nil {
		t.Fatalf("degraded vet output is not the wrapped object: %v\n%s", err, out)
	}
	if !wrapped.Degraded || !strings.Contains(wrapped.Reason, "pair budget") {
		t.Fatalf("degradation not recorded in JSON: %+v", wrapped)
	}
	if !strings.Contains(stderr, "findings may be missing") {
		t.Fatalf("missing degraded-vet warning on stderr:\n%s", stderr)
	}
}

func TestVetHealthyJSONShapeUnchanged(t *testing.T) {
	path := writeTemp(t, leakSrc)
	out, _, code := runCLI(t, "-vet", "-format", "json", path)
	if code != 1 {
		t.Fatalf("vet with one finding must exit 1, got %d", code)
	}
	var arr []json.RawMessage
	if err := json.Unmarshal([]byte(out), &arr); err != nil || len(arr) != 1 {
		t.Fatalf("healthy vet output must stay a plain array: err=%v\n%s", err, out)
	}
}

func TestMaxStepsAliasKeepsWorking(t *testing.T) {
	src := swapRecCLISrc(12)
	ciIns, _ := measureWork(t, src)
	path := writeTemp(t, src)
	_, stderr, code := runCLI(t, "-analysis", "ci", "-maxsteps", fmt.Sprint(ciIns/2), "-print", "pointsto", path)
	if code != 1 || !strings.Contains(stderr, "step budget") {
		t.Fatalf("-maxsteps alias inert: code=%d stderr:\n%s", code, stderr)
	}
}
