package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestModRefGolden pins the -print modref CLI output on one corpus
// program. Regenerate with: go test ./cmd/aliaslab -run ModRef -update
func TestModRefGolden(t *testing.T) {
	out, stderr, code := runCLI(t, "-corpus", "part", "-print", "modref")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	golden := filepath.Join("testdata", "modref_part.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if out != string(want) {
		t.Errorf("-print modref output differs from %s:\n--- got\n%s--- want\n%s", golden, out, want)
	}
}

// leakSrc has exactly one finding: a leaked allocation.
const leakSrc = `
int main(void) {
	int *p;
	p = (int *) malloc(4);
	*p = 1;
	return 0;
}
`

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVetText(t *testing.T) {
	out, stderr, code := runCLI(t, "-vet", writeTemp(t, leakSrc))
	if code != 1 {
		t.Fatalf("exit %d (want 1 on findings), stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "may leak") || !strings.Contains(out, "[leak]") {
		t.Errorf("leak finding missing from output:\n%s", out)
	}
}

func TestVetCleanExitsZero(t *testing.T) {
	out, stderr, code := runCLI(t, "-vet", writeTemp(t, "int main(void) { return 0; }\n"))
	if code != 0 || out != "" {
		t.Fatalf("clean program: exit %d, stdout %q, stderr %s", code, out, stderr)
	}
}

func TestVetJSON(t *testing.T) {
	out, stderr, code := runCLI(t, "-vet", "-format", "json", writeTemp(t, leakSrc))
	if code != 1 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Severity string `json:"severity"`
		Checker  string `json:"checker"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Checker != "leak" || diags[0].Line != 4 {
		t.Errorf("unexpected JSON diagnostics: %+v", diags)
	}
}

func TestVetCheckerFilter(t *testing.T) {
	// Only the uaf checker selected: the leak must not be reported.
	out, _, code := runCLI(t, "-vet", "-checkers", "uaf", writeTemp(t, leakSrc))
	if code != 0 || out != "" {
		t.Errorf("filtered vet: exit %d, output %q", code, out)
	}
	if _, stderr, code := runCLI(t, "-vet", "-checkers", "nosuch", writeTemp(t, leakSrc)); code != 2 ||
		!strings.Contains(stderr, "unknown checker") {
		t.Errorf("unknown checker: exit %d, stderr %q", code, stderr)
	}
}

func TestVetCheckersHelp(t *testing.T) {
	out, _, code := runCLI(t, "-vet", "-checkers", "help")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"uaf", "dangling", "nullderef", "uninit", "leak"} {
		if !strings.Contains(out, id) {
			t.Errorf("checker %s missing from help:\n%s", id, out)
		}
	}
}

// timingTokens matches the run-to-run-varying fields of a trace line:
// wall time and allocation deltas. Everything else in the tree — span
// names, nesting, unit names, solver counters, diagnostic counts — is
// deterministic and golden-able.
var timingTokens = regexp.MustCompile(`(dur|alloc|mallocs)=\S+`)

// TestTraceGolden pins the full observable surface of a traced vet run
// on a corpus fixture: the vet JSON on stdout (byte-exact) and the
// span tree on stderr with timing fields scrubbed. Regenerate with:
// go test ./cmd/aliaslab -run TraceGolden -update
func TestTraceGolden(t *testing.T) {
	out, stderr, code := runCLI(t, "-trace", "-corpus", "part", "-vet", "-format", "json")
	if code != 1 {
		t.Fatalf("exit %d (want 1: fixture has findings), stderr: %s", code, stderr)
	}
	got := out + "--- trace ---\n" + timingTokens.ReplaceAllString(stderr, "$1=X")
	golden := filepath.Join("testdata", "trace_vet_part.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("traced vet output differs from %s:\n--- got\n%s--- want\n%s", golden, got, want)
	}
}

// TestTraceOffByDefault: without -trace the CLI writes nothing to
// stderr — the observability layer must not leak into default output.
func TestTraceOffByDefault(t *testing.T) {
	_, stderr, _ := runCLI(t, "-corpus", "part", "-vet", "-format", "json")
	if stderr != "" {
		t.Errorf("untraced run wrote to stderr: %q", stderr)
	}
}

// TestRecursiveSingleFlag exercises the -recursivesingle ablation end
// to end; the corpus must still analyze cleanly under it.
func TestRecursiveSingleFlag(t *testing.T) {
	out, stderr, code := runCLI(t, "-recursivesingle", "-corpus", "part", "-print", "sizes")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "part.c:") {
		t.Errorf("unexpected sizes output: %q", out)
	}
}

func TestUsageError(t *testing.T) {
	if _, _, code := runCLI(t); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
}

// TestBackendGolden pins the text and JSON output of every backend on
// one corpus program: the four-way precision frontier is directly
// visible as the goldens' referent sets widen from cs to steensgaard.
// Regenerate with: go test ./cmd/aliaslab -run BackendGolden -update
func TestBackendGolden(t *testing.T) {
	for _, kind := range []string{"cs", "ci", "andersen", "steensgaard"} {
		for _, mode := range []string{"indirect", "json"} {
			t.Run(kind+"/"+mode, func(t *testing.T) {
				out, stderr, code := runCLI(t, "-corpus", "part", "-backend", kind, "-print", mode)
				if code != 0 {
					t.Fatalf("exit %d, stderr: %s", code, stderr)
				}
				golden := filepath.Join("testdata", "backend_"+kind+"_"+mode+"_part.golden")
				if *update {
					if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if out != string(want) {
					t.Errorf("-backend %s -print %s output differs from %s:\n--- got\n%s--- want\n%s",
						kind, mode, golden, out, want)
				}
			})
		}
	}
}

// TestBackendErrors: the backend flag fails loudly — unknown names get
// the usage message, conflicting selectors are rejected, and options
// that cannot apply to a backend are an error rather than silently
// ignored.
func TestBackendErrors(t *testing.T) {
	if _, stderr, code := runCLI(t, "-corpus", "part", "-backend", "anderson"); code != 2 ||
		!strings.Contains(stderr, `unknown backend "anderson"`) ||
		!strings.Contains(stderr, "usage: aliaslab") {
		t.Errorf("unknown backend: exit %d, stderr %q", code, stderr)
	}
	if _, stderr, code := runCLI(t, "-corpus", "part", "-backend", "cs", "-analysis", "ci"); code != 2 ||
		!strings.Contains(stderr, "conflicts") {
		t.Errorf("backend/analysis conflict: exit %d, stderr %q", code, stderr)
	}
	if _, stderr, code := runCLI(t, "-corpus", "part", "-backend", "steensgaard", "-worklist", "lifo"); code != 2 ||
		!strings.Contains(stderr, "no worklist to schedule") {
		t.Errorf("steensgaard -worklist: exit %d, stderr %q", code, stderr)
	}
	if _, stderr, code := runCLI(t, "-corpus", "part", "-backend", "cs", "-vet"); code != 2 ||
		!strings.Contains(stderr, "-vet runs on the ci, andersen, or steensgaard backend") {
		t.Errorf("cs vet: exit %d, stderr %q", code, stderr)
	}
}

// writeTempN writes n distinguishable single-finding programs and
// returns their paths.
func writeTempN(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	var out []string
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("prog%d.c", i))
		if err := os.WriteFile(path, []byte(leakSrc), 0o644); err != nil {
			t.Fatal(err)
		}
		out = append(out, path)
	}
	return out
}

// TestMultiFileRendersInArgumentOrder: several files analyze (possibly
// in parallel) and render under per-file headers in argument order,
// with identical bytes at every -jobs width.
func TestMultiFileRendersInArgumentOrder(t *testing.T) {
	files := writeTempN(t, 5)
	var want string
	for _, jobs := range []string{"1", "4"} {
		args := append([]string{"-jobs", jobs, "-print", "pointsto"}, files...)
		out, stderr, code := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("jobs=%s: exit %d, stderr: %s", jobs, code, stderr)
		}
		var lastIdx int
		for _, f := range files {
			idx := strings.Index(out, "== "+f+" ==")
			if idx < 0 {
				t.Fatalf("jobs=%s: missing header for %s in output:\n%s", jobs, f, out)
			}
			if idx < lastIdx {
				t.Fatalf("jobs=%s: %s rendered out of argument order", jobs, f)
			}
			lastIdx = idx
		}
		if want == "" {
			want = out
		} else if out != want {
			t.Fatalf("multi-file output differs between -jobs widths")
		}
	}
}

// TestMultiFileWorstExitCode: one bad file among good ones fails the
// run with the bad file's code while the good files still render.
func TestMultiFileWorstExitCode(t *testing.T) {
	good := writeTemp(t, leakSrc)
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte("int main(void) { int x = = ; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, stderr, code := runCLI(t, "-print", "sizes", good, bad)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "== "+good+" ==") || !strings.Contains(out, "lines") {
		t.Fatalf("good file did not render:\n%s", out)
	}
	if !strings.Contains(stderr, "== "+bad+" ==") || !strings.Contains(stderr, "parse") {
		t.Fatalf("bad file's diagnostics missing from stderr:\n%s", stderr)
	}
}

// TestMultiFileVet: the checker suite runs per file in multi-file mode
// and the findings stay attached to the right file.
func TestMultiFileVet(t *testing.T) {
	files := writeTempN(t, 3)
	out, _, code := runCLI(t, append([]string{"-vet"}, files...)...)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (findings present)", code)
	}
	if n := strings.Count(out, "never freed"); n != 3 {
		t.Fatalf("want one leak finding per file (3), got %d:\n%s", n, out)
	}
}
