// Command aliaslab analyzes mini-C source files with the points-to
// analyses of the study and prints the results.
//
// Usage:
//
//	aliaslab [flags] file.c
//	aliaslab [flags] a.c b.c c.c     # multi-file batch, parallel via -jobs
//	aliaslab -corpus part            # analyze an embedded benchmark
//	aliaslab -vet file.c             # run the pointer-bug checkers
//	aliaslab -query 'mayalias(p,q)' file.c   # demand-driven queries
//
// Flags select the analysis (-analysis ci|cs|baseline, or -backend
// ci|cs|andersen|steensgaard to pick a point on the four-way
// precision/cost frontier), what to print (-print
// pointsto|indirect|modref|callgraph|sizes|json), ablations, and the
// checker mode (-vet, filtered with -checkers and rendered per
// -format). -query answers ';'-separated mayalias/pointsto queries by
// solving only the demand slice that can influence the queried
// expressions instead of the whole-program fixpoint (same -format
// text|json switch; answers are byte-identical to the exhaustive
// solve's). The solver's worklist discipline is swappable (-worklist
// fifo|lifo|priority — every strategy reaches the same fixpoint;
// steensgaard has no worklist and rejects the flag) and -stats prints
// the engine's work counters on stderr.
//
// With several files, each is an independent translation unit: units
// analyze concurrently on a bounded worker pool (-jobs, default
// GOMAXPROCS) and render in argument order under a "== file ==" header,
// so the output is identical at any -jobs value. The exit status is the
// highest per-file status.
//
// Resource governance: -timeout, -max-steps, and -max-pairs bound the
// run. In multi-file mode the caps govern the whole batch through one
// shared ledger, not each file separately. A context-sensitive analysis
// that blows its budget degrades gracefully (assumption-set widening,
// then the context-insensitive answer) instead of failing; degraded
// output is labeled and explained on stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"aliaslab/internal/backend"
	"aliaslab/internal/backend/andersen"
	"aliaslab/internal/backend/steensgaard"
	"aliaslab/internal/baseline"
	"aliaslab/internal/checkers"
	"aliaslab/internal/core"
	"aliaslab/internal/corpus"
	"aliaslab/internal/driver"
	"aliaslab/internal/limits"
	"aliaslab/internal/modref"
	"aliaslab/internal/obs"
	"aliaslab/internal/query"
	"aliaslab/internal/report"
	"aliaslab/internal/sched"
	"aliaslab/internal/solver"
	"aliaslab/internal/stats"
	"aliaslab/internal/summary"
	"aliaslab/internal/vdg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the per-unit part of the CLI configuration: everything
// analyzeUnit needs once a unit is loaded.
type config struct {
	analysis string
	print    string
	fn       string
	vet      bool
	checkers string
	format   string
	query    string
	budget   limits.Budget
	strategy solver.Strategy
	stats    bool

	// modular solves the ci analysis bottom-up from per-procedure
	// summaries; summaries is the cache shared across a multi-file
	// batch (nil runs the pure per-procedure-parallel solve).
	modular   bool
	summaries *summary.Cache

	// span is the unit's trace span (nil when untraced); analyzeUnit
	// records its solve/checkers/report phases as children.
	span *obs.Span
}

// run is the whole CLI behind a testable seam: it parses args, executes
// one command, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aliaslab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analysis := fs.String("analysis", "ci", "analysis to run: ci, cs, or baseline")
	backendFlag := fs.String("backend", "", "points-to backend: ci (default), cs, andersen, or steensgaard")
	print_ := fs.String("print", "indirect", "what to print: pointsto, indirect, modref, callgraph, sizes, json, dot")
	fn := fs.String("fn", "main", "function to render with -print dot")
	corpusName := fs.String("corpus", "", "analyze an embedded corpus program instead of a file")
	jobs := fs.Int("jobs", 0, "files analyzed concurrently in multi-file mode (0 = GOMAXPROCS)")
	noSSA := fs.Bool("nossa", false, "ablation: keep non-addressed scalars in the store")
	singleHeap := fs.Bool("singleheap", false, "ablation: one heap base location for all allocation sites")
	recursiveSingle := fs.Bool("recursivesingle", false, "ablation: single-instance locations for address-taken locals of recursive procedures")
	var maxSteps int
	fs.IntVar(&maxSteps, "max-steps", 50_000_000, "per-attempt cap on transfer-function applications (0 = unlimited)")
	fs.IntVar(&maxSteps, "maxsteps", 50_000_000, "alias for -max-steps")
	maxPairs := fs.Int("max-pairs", 0, "cap on materialized points-to pairs per attempt (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole analysis, e.g. 30s (0 = none)")
	worklist := fs.String("worklist", "", "solver worklist strategy: fifo (default), lifo, or priority")
	modular := fs.Bool("modular", false, "solve the ci analysis bottom-up from per-procedure summaries (identical answer; procedures reused across a multi-file batch)")
	statsFlag := fs.Bool("stats", false, "print solver engine counters to stderr after each analysis")
	vet := fs.Bool("vet", false, "run the pointer-bug checkers instead of printing analysis results")
	checkersFlag := fs.String("checkers", "", "comma-separated checker IDs for -vet (default: all; see -vet -checkers help)")
	queryFlag := fs.String("query", "", "answer ';'-separated demand queries, e.g. 'mayalias(p,q); pointsto(s.next)', instead of printing analysis results")
	format := fs.String("format", "text", "-vet/-query output format: text or json")
	traceOn := fs.Bool("trace", false, "record phase spans and print the span tree to stderr")
	traceOut := fs.String("trace-out", "", "write the phase spans as a Chrome trace_event file (implies -trace)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile (with per-phase pprof labels) to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	strategy, err := solver.ParseStrategy(*worklist)
	if err != nil {
		fmt.Fprintln(stderr, "aliaslab:", err)
		return 2
	}

	// -backend is the frontier-wide selector; it resolves onto the same
	// analysis switch -analysis drives. The two flags may not disagree.
	if *backendFlag != "" {
		kind, err := backend.ParseKind(*backendFlag)
		if err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			fmt.Fprintln(stderr, "usage: aliaslab [flags] file.c ...  (or -corpus <name>)")
			return 2
		}
		analysisSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "analysis" {
				analysisSet = true
			}
		})
		if analysisSet && *analysis != kind.String() {
			fmt.Fprintf(stderr, "aliaslab: -analysis %s conflicts with -backend %s; pass only one\n", *analysis, kind)
			return 2
		}
		*analysis = kind.String()
	}
	// Backend/worklist compatibility is validated in one typed place
	// (internal/backend) shared with the facade and the server, so every
	// entry point rejects the combination identically.
	if kind, err := backend.ParseKind(*analysis); err == nil {
		if err := backend.ValidateWorklist(kind, *worklist); err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 2
		}
	}

	// Demand queries solve the ci analysis on a slice; mixing them with
	// another backend, the checkers, or the modular mode would promise a
	// result the query engine does not compute.
	if *queryFlag != "" {
		if *analysis != "ci" {
			fmt.Fprintf(stderr, "aliaslab: -query answers on the ci analysis, not %s\n", *analysis)
			return 2
		}
		if *vet || *modular {
			fmt.Fprintln(stderr, "aliaslab: -query does not combine with -vet or -modular")
			return 2
		}
		if _, err := query.ParseAll(*queryFlag); err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 2
		}
	}

	// Modular solving is a ci-only refinement, and the CLI's vet path
	// keeps the plain exhaustive solve (the daemon's vet accepts the
	// "modular" request field for callers that want both).
	if *modular {
		if *analysis != "ci" {
			fmt.Fprintf(stderr, "aliaslab: -modular solves the ci analysis, not %s\n", *analysis)
			return 2
		}
		if *vet {
			fmt.Fprintln(stderr, "aliaslab: -modular does not combine with -vet")
			return 2
		}
	}

	if *vet && *checkersFlag == "help" {
		for _, c := range checkers.All {
			fmt.Fprintf(stdout, "%-10s %s\n", c.ID, c.Doc)
		}
		return 0
	}

	// Observability: all of it hangs off a nil tracer when unused, so
	// the default run stays on the untraced hot path and its output is
	// byte-identical with and without this block compiled in.
	tracing := *traceOn || *traceOut != ""
	var tr *obs.Tracer
	if tracing || *cpuprofile != "" {
		tr = obs.New(obs.Config{MemStats: tracing, Labels: true})
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
		defer stop()
	}

	opts := vdg.Options{
		NoSSA:                 *noSSA,
		SingleHeapBase:        *singleHeap,
		RecursiveLocalsSingle: *recursiveSingle,
		Diagnostics:           *vet,
	}

	// Assemble the resource budget shared by all analysis modes. The
	// deadline spans the whole run; step/pair caps apply per attempt
	// (per batch in multi-file mode, via a shared ledger).
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	budget := limits.Budget{Ctx: ctx, MaxSteps: maxSteps, MaxPairs: *maxPairs}

	cfg := config{
		analysis: *analysis,
		print:    *print_,
		fn:       *fn,
		vet:      *vet,
		checkers: *checkersFlag,
		format:   *format,
		query:    *queryFlag,
		budget:   budget,
		strategy: strategy,
		stats:    *statsFlag,
		modular:  *modular,
	}
	if *modular {
		// One cache for the whole invocation: in multi-file mode the
		// units share it, so a procedure solved for one file is free for
		// every identical body later in the batch.
		cfg.summaries = summary.NewCache(0, nil)
	}

	code := func() int {
		if *corpusName != "" || fs.NArg() == 1 {
			// Single-unit mode: exactly the classic CLI, straight to the
			// real streams.
			unitName := *corpusName
			if unitName == "" {
				unitName = fs.Arg(0)
			}
			sp := tr.StartSpan("unit", obs.Str("unit", unitName))
			defer sp.End()
			cfg.span = sp
			var u *driver.Unit
			var err error
			if *corpusName != "" {
				u, err = corpus.LoadSpan(*corpusName, opts, sp)
			} else {
				u, err = driver.LoadFileSpan(fs.Arg(0), opts, sp)
			}
			if err != nil {
				fmt.Fprintln(stderr, "aliaslab:", err)
				return 1
			}
			return analyzeUnit(u, cfg, stdout, stderr)
		}
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "usage: aliaslab [flags] file.c ...  (or -corpus <name>)")
			return 2
		}
		return runMulti(fs.Args(), opts, cfg, *jobs, tr, stdout, stderr)
	}()

	if tracing {
		obs.WriteTree(stderr, tr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = obs.WriteChromeTrace(f, tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
	}
	return code
}

// runMulti analyzes several files as independent units on the worker
// pool and renders them in argument order. Every unit buffers its own
// output, so interleaved completion cannot scramble the rendering: the
// bytes are identical at any -jobs value.
func runMulti(files []string, opts vdg.Options, cfg config, jobs int, tr *obs.Tracer, stdout, stderr io.Writer) int {
	// One ledger across the batch: the step/pair caps govern the sum of
	// the workers' work, exactly as in the corpus engine.
	cfg.budget = cfg.budget.Share(&limits.Ledger{})

	type result struct {
		out, errOut bytes.Buffer
		code        int
	}
	batch := tr.StartSpan("batch", obs.Int("units", len(files)))
	results := make([]result, len(files))
	spans := make([]*obs.Span, len(files))
	errs := sched.Pool{Jobs: jobs}.Map(cfg.budget.Ctx, len(files), func(_ context.Context, i int) error {
		r := &results[i]
		// Detached per-unit span, built entirely on this worker and
		// adopted by the batch root in argument order after the pool
		// drains — the same discipline that keeps the buffered output
		// deterministic.
		sp := tr.Detached("unit", obs.Str("unit", files[i]))
		spans[i] = sp
		ucfg := cfg
		ucfg.span = sp
		defer sp.End()
		u, err := driver.LoadFileSpan(files[i], opts, sp)
		if err != nil {
			fmt.Fprintln(&r.errOut, "aliaslab:", err)
			r.code = 1
			return nil
		}
		r.code = analyzeUnit(u, ucfg, &r.out, &r.errOut)
		return nil
	})
	for _, sp := range spans {
		batch.Attach(sp)
	}
	batch.End()

	worst := 0
	for i := range results {
		r := &results[i]
		if errs[i] != nil && r.code == 0 {
			// A panic the unit guard missed, or a skipped slot after
			// cancellation.
			fmt.Fprintln(&r.errOut, "aliaslab:", errs[i])
			r.code = 1
		}
		fmt.Fprintf(stdout, "== %s ==\n", files[i])
		io.Copy(stdout, &r.out)
		if r.errOut.Len() > 0 {
			fmt.Fprintf(stderr, "== %s ==\n", files[i])
			io.Copy(stderr, &r.errOut)
		}
		if r.code > worst {
			worst = r.code
		}
	}
	return worst
}

// analyzeUnit executes the configured command on one loaded unit.
func analyzeUnit(u *driver.Unit, cfg config, stdout, stderr io.Writer) int {
	if cfg.vet {
		return runVet(u, cfg, stdout, stderr)
	}
	if cfg.query != "" {
		return runQuery(u, cfg, stdout, stderr)
	}

	// Run the selected analysis under the budget, always materializing a
	// per-output pair map plus a CI result for clients that need the
	// call graph. Blowing the budget degrades (CS widens, then falls
	// back to CI) rather than failing; the label carries the tier so the
	// output cannot be mistaken for the exact answer.
	var ci *core.Result
	var sets map[*vdg.Output]*core.PairSet
	var label string
	unsound := false
	switch cfg.analysis {
	case "ci", "cs":
		if cfg.modular {
			// Bottom-up solve from per-procedure summaries. The label is
			// the exhaustive one on purpose: the pair sets are identical
			// (oracle-enforced), so the rendering must not differ either.
			sp := cfg.span.Child("solve-ci-modular")
			mo := core.ModularOptions{Budget: cfg.budget, Strategy: cfg.strategy}
			if cfg.summaries != nil {
				mo.Cache = cfg.summaries
			}
			res, mst := core.AnalyzeModular(u.Graph, mo)
			core.AttachEngine(sp, res.Engine)
			sp.End()
			ci, sets = res, res.Sets
			label = "context-insensitive"
			if cfg.stats {
				printEngineStats(stderr, "ci", res.Engine)
				fmt.Fprintf(stderr, "aliaslab: modular: %d procedures, %d reused, %d solved, %d rounds, %d restarts\n",
					mst.Procedures, mst.Reused(), mst.Misses+mst.Forced, mst.Rounds, mst.Restarts)
			}
			if res.Stopped != nil {
				unsound = true
				fmt.Fprintf(stderr, "aliaslab: warning: modular solve stopped early (%v); the partial result under-approximates and is NOT a sound may-alias answer\n", res.Stopped)
			}
			break
		}
		gr := core.AnalyzeGoverned(u.Graph, core.GovernedOptions{
			Budget:    cfg.budget,
			Sensitive: cfg.analysis == "cs",
			Strategy:  cfg.strategy,
			Span:      cfg.span,
		})
		ci, sets = gr.CI, gr.Sets
		if cfg.stats {
			printEngineStats(stderr, "ci", gr.CI.Engine)
			if gr.CS != nil {
				printEngineStats(stderr, "cs", gr.CS.Engine)
			}
		}
		label = "context-insensitive"
		if cfg.analysis == "cs" {
			label = "context-sensitive"
		}
		if gr.Degraded() {
			for _, n := range gr.Notes {
				fmt.Fprintln(stderr, "aliaslab:", n)
			}
			label += " (degraded: " + gr.Tier.String() + ")"
		}
		if !gr.Tier.Sound() {
			unsound = true
			fmt.Fprintln(stderr, "aliaslab: warning: partial context-insensitive fixpoint; the result under-approximates and is NOT a sound may-alias answer")
		}
	case "andersen", "steensgaard":
		sp := cfg.span.Child("solve-" + cfg.analysis)
		var res *core.Result
		if cfg.analysis == "andersen" {
			res = andersen.AnalyzeEngine(u.Graph, cfg.budget, cfg.strategy)
			label = "andersen (inclusion-based)"
		} else {
			res = steensgaard.AnalyzeBudgeted(u.Graph, cfg.budget)
			label = "steensgaard (unification-based)"
		}
		core.AttachEngine(sp, res.Engine)
		sp.End()
		ci, sets = res, res.Sets
		if cfg.stats {
			printEngineStats(stderr, cfg.analysis, res.Engine)
		}
		if res.Stopped != nil {
			unsound = true
			fmt.Fprintf(stderr, "aliaslab: warning: %s solve stopped early (%v); the partial result under-approximates and is NOT a sound may-alias answer\n", cfg.analysis, res.Stopped)
		}
	case "baseline":
		sp := cfg.span.Child("solve-ci")
		ci = core.AnalyzeInsensitiveEngine(u.Graph, limits.Budget{}, cfg.strategy)
		core.AttachEngine(sp, ci.Engine)
		sp = cfg.span.Child("solve-baseline")
		sets = baseline.Analyze(u.Graph).Sets()
		sp.End()
		label = "program-wide (Weihl baseline)"
		if cfg.stats {
			printEngineStats(stderr, "ci", ci.Engine)
		}
	default:
		fmt.Fprintln(stderr, "aliaslab: unknown analysis", cfg.analysis)
		return 2
	}

	rsp := cfg.span.Child("report", obs.Str("print", cfg.print))
	defer rsp.End()
	switch cfg.print {
	case "sizes":
		s := stats.Sizes(u.Name, u.SourceLines, u.Graph)
		fmt.Fprintf(stdout, "%s: %d lines, %d VDG nodes, %d alias-related outputs\n",
			s.Name, s.Lines, s.Nodes, s.AliasOutputs)
	case "pointsto":
		printPointsTo(stdout, u, sets, label)
	case "indirect":
		printIndirect(stdout, u, sets, label)
	case "json":
		if err := printJSON(stdout, u, sets, label); err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
	case "modref":
		printModRef(stdout, u, ci, cfg.modular)
	case "callgraph":
		printCallGraph(stdout, u, ci, cfg.modular)
	case "dot":
		fg := u.Graph.FuncOf[u.Prog.FuncMap[cfg.fn]]
		if fg == nil {
			fmt.Fprintf(stderr, "aliaslab: no function %q\n", cfg.fn)
			return 1
		}
		vdg.WriteDot(stdout, fg)
	default:
		fmt.Fprintln(stderr, "aliaslab: unknown -print mode", cfg.print)
		return 2
	}
	if unsound {
		return 1
	}
	return 0
}

// runVet executes the checker suite over an instrumented unit and
// renders the diagnostics. Exit status 1 signals findings, 0 a clean
// program (mirroring `go vet`), and 3 a degraded run: the points-to
// analysis hit its budget, so the findings are best-effort and a clean
// report does not certify the program.
func runVet(u *driver.Unit, cfg config, stdout, stderr io.Writer) int {
	var ids []string
	if cfg.checkers != "" {
		for _, id := range strings.Split(cfg.checkers, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	sel, err := checkers.Select(ids)
	if err != nil {
		fmt.Fprintln(stderr, "aliaslab:", err)
		return 2
	}
	// The checkers interpret any CI-shaped points-to solution, so the
	// flow-insensitive backends plug straight in (coarser referent sets
	// mean more may-findings, never fewer). The context-sensitive and
	// baseline results lack the call-graph shape vet needs.
	var res *core.Result
	statsName := cfg.analysis
	switch cfg.analysis {
	case "ci":
		sp := cfg.span.Child("solve-ci")
		res = core.AnalyzeInsensitiveEngine(u.Graph, cfg.budget, cfg.strategy)
		core.AttachEngine(sp, res.Engine)
	case "andersen":
		sp := cfg.span.Child("solve-andersen")
		res = andersen.AnalyzeEngine(u.Graph, cfg.budget, cfg.strategy)
		core.AttachEngine(sp, res.Engine)
	case "steensgaard":
		sp := cfg.span.Child("solve-steensgaard")
		res = steensgaard.AnalyzeBudgeted(u.Graph, cfg.budget)
		core.AttachEngine(sp, res.Engine)
	default:
		fmt.Fprintf(stderr, "aliaslab: -vet runs on the ci, andersen, or steensgaard backend, not %s\n", cfg.analysis)
		return 2
	}
	if cfg.stats {
		printEngineStats(stderr, statsName, res.Engine)
	}
	sp := cfg.span.Child("checkers")
	diags := checkers.Run(checkers.NewContext(u.Graph, res), sel)
	sp.SetAttr(obs.Int("diags", len(diags)))
	sp.End()
	degradedReason := ""
	if res.Stopped != nil {
		degradedReason = res.Stopped.Error()
		fmt.Fprintf(stderr, "aliaslab: warning: vet ran on a partial points-to solution (%s); findings may be missing\n", degradedReason)
	}
	rsp := cfg.span.Child("report", obs.Str("format", cfg.format))
	defer rsp.End()
	switch cfg.format {
	case "text":
		report.WriteDiags(stdout, diags)
	case "json":
		// The JSON shape only changes when degraded, so existing
		// consumers of the plain array are unaffected by healthy runs.
		if err := report.WriteDiagsJSONDegraded(stdout, diags, degradedReason); err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "aliaslab: unknown -format", cfg.format)
		return 2
	}
	if degradedReason != "" {
		return 3
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runQuery answers the configured demand queries on one unit. Exit
// status 0 means every query answered, 1 an unresolvable expression,
// and 3 a degraded run: the demand solve hit its budget, so an
// "unknown" verdict stands in for an answer the slice could not
// finish. The span records one child per query so traces show slice
// reuse (memo hits have no solve child work).
func runQuery(u *driver.Unit, cfg config, stdout, stderr io.Writer) int {
	qs, err := query.ParseAll(cfg.query)
	if err != nil {
		fmt.Fprintln(stderr, "aliaslab:", err)
		return 2
	}
	e := query.New(u.Graph, query.Options{Budget: cfg.budget, Strategy: cfg.strategy})
	answers := make([]query.Answer, 0, len(qs))
	degraded := false
	for _, q := range qs {
		sp := cfg.span.Child("query", obs.Str("query", q.String()))
		ans, err := e.Query(q)
		sp.End()
		if err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
		if ans.Degraded() {
			degraded = true
		}
		if cfg.stats {
			fmt.Fprintf(stderr, "aliaslab: query %s: slice %d/%d outputs, %d/%d procedures, %d steps, memo hit %v\n",
				ans.Query, ans.Slice.Outputs, ans.Slice.TotalOutputs,
				ans.Slice.Procedures, ans.Slice.TotalProcedures, ans.Slice.Steps, ans.Slice.MemoHit)
		}
		answers = append(answers, ans)
	}
	switch cfg.format {
	case "text":
		for _, a := range answers {
			fmt.Fprintln(stdout, renderAnswer(a))
		}
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(answers); err != nil {
			fmt.Fprintln(stderr, "aliaslab:", err)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "aliaslab: unknown -format", cfg.format)
		return 2
	}
	if degraded {
		fmt.Fprintln(stderr, "aliaslab: warning: a demand solve stopped on its budget; unknown verdicts are degraded answers, not proofs")
		return 3
	}
	return 0
}

// renderAnswer is the one-line text form of a query answer.
func renderAnswer(a query.Answer) string {
	switch a.Verdict {
	case "yes":
		return fmt.Sprintf("%s: yes (witness %s)", a.Query, a.Witness)
	case "no":
		return fmt.Sprintf("%s: no", a.Query)
	case "ok":
		if len(a.PointsTo) == 0 {
			return fmt.Sprintf("%s: (empty)", a.Query)
		}
		return fmt.Sprintf("%s: %s", a.Query, strings.Join(a.PointsTo, ", "))
	default:
		return fmt.Sprintf("%s: unknown (%s)", a.Query, a.Reason)
	}
}

// printEngineStats renders one analysis run's solver counters on
// stderr (it is diagnostics, not part of the result rendering).
func printEngineStats(w io.Writer, analysis string, st solver.Stats) {
	fmt.Fprintf(w, "aliaslab: %s engine [%s]: steps %d, meets %d, pair inserts %d, subsume hits %d, subsume drops %d, enqueued %d, peak depth %d",
		analysis, st.Strategy, st.Steps, st.Meets, st.PairInserts, st.SubsumeHits, st.SubsumeDrops, st.Enqueued, st.PeakDepth)
	if st.Constraints > 0 {
		// Constraint-backend runs carry their own counters; CI/CS lines
		// stay byte-identical to the pre-backend output.
		fmt.Fprintf(w, ", constraints %d, edges %d, sccs collapsed %d, unions %d",
			st.Constraints, st.EdgesAdded, st.SCCsCollapsed, st.Unions)
	}
	fmt.Fprintln(w)
}

// printPointsTo dumps the final store at main's return: the pairs a
// human usually wants to see.
func printPointsTo(w io.Writer, u *driver.Unit, sets map[*vdg.Output]*core.PairSet, label string) {
	fmt.Fprintf(w, "%s points-to pairs in the store at main's return:\n", label)
	if u.Graph.Entry == nil || u.Graph.Entry.ReturnStore() == nil {
		fmt.Fprintln(w, "  (no main return store)")
		return
	}
	s := sets[u.Graph.Entry.ReturnStore()]
	if s == nil || s.Len() == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	var lines []string
	for _, p := range s.Sorted() {
		lines = append(lines, fmt.Sprintf("  %s -> %s", p.Path, p.Ref))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	census := stats.Census(u.Graph, sets)
	fmt.Fprintf(w, "total pairs over all outputs: %d (pointer %d, function %d, aggregate %d, store %d)\n",
		census.Total, census.Pointer, census.Function, census.Aggregate, census.Store)
}

// printIndirect lists every indirect memory operation with its referents.
func printIndirect(w io.Writer, u *driver.Unit, sets map[*vdg.Output]*core.PairSet, label string) {
	fmt.Fprintf(w, "%s referents of indirect memory operations:\n", label)
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if (n.Kind != vdg.KLookup && n.Kind != vdg.KUpdate) || !n.Indirect {
				continue
			}
			kind := "read"
			if n.Kind == vdg.KUpdate {
				kind = "write"
			}
			var refs []string
			if s := sets[n.Loc()]; s != nil {
				for _, r := range s.Referents() {
					refs = append(refs, r.String())
				}
			}
			sort.Strings(refs)
			fmt.Fprintf(w, "  %-5s %-18s in %-12s -> %v\n", kind, n.Pos, fg.Fn.Name, refs)
		}
	}
	ops := stats.CountIndirect(u.Graph, sets)
	fmt.Fprintf(w, "reads: %d ops avg %.2f max %d; writes: %d ops avg %.2f max %d\n",
		ops.Reads.Total, ops.Reads.Avg(), ops.Reads.Max,
		ops.Writes.Total, ops.Writes.Avg(), ops.Writes.Max)
}

// printJSON renders one unit's solution as deterministic JSON: the
// label, the pair census, the Figure 4 indirect-operation summary, and
// the sorted store at main's return. One shape for every backend, so
// frontier points diff structurally.
func printJSON(w io.Writer, u *driver.Unit, sets map[*vdg.Output]*core.PairSet, label string) error {
	census := stats.Census(u.Graph, sets)
	ops := stats.CountIndirect(u.Graph, sets)
	type opsJSON struct {
		Ops int     `json:"ops"`
		Avg float64 `json:"avgReferents"`
		Max int     `json:"maxReferents"`
	}
	type pairJSON struct {
		Path string `json:"path"`
		Ref  string `json:"referent"`
	}
	out := struct {
		Unit   string `json:"unit"`
		Label  string `json:"label"`
		Census struct {
			Total     int `json:"total"`
			Pointer   int `json:"pointer"`
			Function  int `json:"function"`
			Aggregate int `json:"aggregate"`
			Store     int `json:"store"`
		} `json:"pairs"`
		Reads       opsJSON    `json:"reads"`
		Writes      opsJSON    `json:"writes"`
		StoreAtExit []pairJSON `json:"storeAtExit"`
	}{Unit: u.Name, Label: label}
	out.Census.Total = census.Total
	out.Census.Pointer = census.Pointer
	out.Census.Function = census.Function
	out.Census.Aggregate = census.Aggregate
	out.Census.Store = census.Store
	out.Reads = opsJSON{Ops: ops.Reads.Total, Avg: ops.Reads.Avg(), Max: ops.Reads.Max}
	out.Writes = opsJSON{Ops: ops.Writes.Total, Avg: ops.Writes.Avg(), Max: ops.Writes.Max}
	if u.Graph.Entry != nil && u.Graph.Entry.ReturnStore() != nil {
		if s := sets[u.Graph.Entry.ReturnStore()]; s != nil {
			for _, p := range s.Sorted() {
				out.StoreAtExit = append(out.StoreAtExit, pairJSON{Path: p.Path.String(), Ref: p.Ref.String()})
			}
			sort.Slice(out.StoreAtExit, func(i, j int) bool {
				if out.StoreAtExit[i].Path != out.StoreAtExit[j].Path {
					return out.StoreAtExit[i].Path < out.StoreAtExit[j].Path
				}
				return out.StoreAtExit[i].Ref < out.StoreAtExit[j].Ref
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printModRef renders the transitive mod/ref sets per function. The
// lexical flag (set under -modular) orders each list by location name
// instead of the solver's path-intern order: the modular solve interns
// paths in a different order than the exhaustive one, so only the
// name-sorted rendering is deterministic there. The default rendering
// is pinned by golden files and must keep its historical order.
func printModRef(w io.Writer, u *driver.Unit, ci *core.Result, lexical bool) {
	info := modref.Compute(ci)
	for _, fg := range u.Graph.Funcs {
		if fg.Fn.Body == nil {
			continue
		}
		fmt.Fprintf(w, "%s:\n", fg.Fn.Name)
		var mods, refs []string
		for _, p := range info.Mod[fg].Sorted() {
			mods = append(mods, p.String())
		}
		for _, p := range info.Ref[fg].Sorted() {
			refs = append(refs, p.String())
		}
		if lexical {
			sort.Strings(mods)
			sort.Strings(refs)
		}
		fmt.Fprintf(w, "  mod: %v\n", mods)
		fmt.Fprintf(w, "  ref: %v\n", refs)
	}
}

// printCallGraph renders discovered call edges and the §5.1.2 stats.
// lexical sorts each call's callee names (see printModRef).
func printCallGraph(w io.Writer, u *driver.Unit, ci *core.Result, lexical bool) {
	for _, fg := range u.Graph.Funcs {
		for _, call := range fg.Calls {
			var names []string
			for _, callee := range ci.Callees[call] {
				names = append(names, callee.Fn.Name)
			}
			if lexical {
				sort.Strings(names)
			}
			fmt.Fprintf(w, "  %s at %s -> %v\n", fg.Fn.Name, call.Pos, names)
		}
	}
	cg := stats.CallGraph(ci)
	fmt.Fprintf(w, "%d called procedures, %.1f avg callers, %d single-caller (%s)\n",
		cg.Procedures, cg.AvgCallers, cg.SingleCaller, report.Pct(100*float64(cg.SingleCaller)/float64(max(cg.Procedures, 1)))+"%")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
