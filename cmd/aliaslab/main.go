// Command aliaslab analyzes a mini-C source file with the points-to
// analyses of the study and prints the results.
//
// Usage:
//
//	aliaslab [flags] file.c
//	aliaslab -corpus part            # analyze an embedded benchmark
//
// Flags select the analysis (-analysis ci|cs|baseline), what to print
// (-print pointsto|indirect|modref|callgraph|sizes), and ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"aliaslab/internal/baseline"
	"aliaslab/internal/core"
	"aliaslab/internal/corpus"
	"aliaslab/internal/driver"
	"aliaslab/internal/modref"
	"aliaslab/internal/report"
	"aliaslab/internal/stats"
	"aliaslab/internal/vdg"
)

func main() {
	analysis := flag.String("analysis", "ci", "analysis to run: ci, cs, or baseline")
	print_ := flag.String("print", "indirect", "what to print: pointsto, indirect, modref, callgraph, sizes, dot")
	fn := flag.String("fn", "main", "function to render with -print dot")
	corpusName := flag.String("corpus", "", "analyze an embedded corpus program instead of a file")
	noSSA := flag.Bool("nossa", false, "ablation: keep non-addressed scalars in the store")
	singleHeap := flag.Bool("singleheap", false, "ablation: one heap base location for all allocation sites")
	maxSteps := flag.Int("maxsteps", 50_000_000, "context-sensitive analysis step bound")
	flag.Parse()

	opts := vdg.Options{NoSSA: *noSSA, SingleHeapBase: *singleHeap}

	var u *driver.Unit
	var err error
	switch {
	case *corpusName != "":
		u, err = corpus.Load(*corpusName, opts)
	case flag.NArg() == 1:
		u, err = driver.LoadFile(flag.Arg(0), opts)
	default:
		fmt.Fprintln(os.Stderr, "usage: aliaslab [flags] file.c  (or -corpus <name>)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aliaslab:", err)
		os.Exit(1)
	}

	// Run the selected analysis, always materializing a per-output pair
	// map plus a CI result for clients that need the call graph.
	ci := core.AnalyzeInsensitive(u.Graph)
	sets := ci.Sets
	label := "context-insensitive"
	switch *analysis {
	case "ci":
	case "cs":
		cs := core.AnalyzeSensitive(u.Graph, core.SensitiveOptions{CI: ci, MaxSteps: *maxSteps})
		if cs.Aborted {
			fmt.Fprintln(os.Stderr, "aliaslab: context-sensitive analysis exceeded the step bound")
			os.Exit(1)
		}
		sets = cs.Strip()
		label = "context-sensitive"
	case "baseline":
		sets = baseline.Analyze(u.Graph).Sets()
		label = "program-wide (Weihl baseline)"
	default:
		fmt.Fprintln(os.Stderr, "aliaslab: unknown analysis", *analysis)
		os.Exit(2)
	}

	w := os.Stdout
	switch *print_ {
	case "sizes":
		s := stats.Sizes(u.Name, u.SourceLines, u.Graph)
		fmt.Fprintf(w, "%s: %d lines, %d VDG nodes, %d alias-related outputs\n",
			s.Name, s.Lines, s.Nodes, s.AliasOutputs)
	case "pointsto":
		printPointsTo(w, u, sets, label)
	case "indirect":
		printIndirect(w, u, sets, label)
	case "modref":
		printModRef(w, u, ci)
	case "callgraph":
		printCallGraph(w, u, ci)
	case "dot":
		fg := u.Graph.FuncOf[u.Prog.FuncMap[*fn]]
		if fg == nil {
			fmt.Fprintf(os.Stderr, "aliaslab: no function %q\n", *fn)
			os.Exit(1)
		}
		vdg.WriteDot(w, fg)
	default:
		fmt.Fprintln(os.Stderr, "aliaslab: unknown -print mode", *print_)
		os.Exit(2)
	}
}

// printPointsTo dumps the final store at main's return: the pairs a
// human usually wants to see.
func printPointsTo(w *os.File, u *driver.Unit, sets map[*vdg.Output]*core.PairSet, label string) {
	fmt.Fprintf(w, "%s points-to pairs in the store at main's return:\n", label)
	if u.Graph.Entry == nil || u.Graph.Entry.ReturnStore() == nil {
		fmt.Fprintln(w, "  (no main return store)")
		return
	}
	s := sets[u.Graph.Entry.ReturnStore()]
	if s == nil || s.Len() == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	var lines []string
	for _, p := range s.Sorted() {
		lines = append(lines, fmt.Sprintf("  %s -> %s", p.Path, p.Ref))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	census := stats.Census(u.Graph, sets)
	fmt.Fprintf(w, "total pairs over all outputs: %d (pointer %d, function %d, aggregate %d, store %d)\n",
		census.Total, census.Pointer, census.Function, census.Aggregate, census.Store)
}

// printIndirect lists every indirect memory operation with its referents.
func printIndirect(w *os.File, u *driver.Unit, sets map[*vdg.Output]*core.PairSet, label string) {
	fmt.Fprintf(w, "%s referents of indirect memory operations:\n", label)
	for _, fg := range u.Graph.Funcs {
		for _, n := range fg.Nodes {
			if (n.Kind != vdg.KLookup && n.Kind != vdg.KUpdate) || !n.Indirect {
				continue
			}
			kind := "read"
			if n.Kind == vdg.KUpdate {
				kind = "write"
			}
			var refs []string
			if s := sets[n.Loc()]; s != nil {
				for _, r := range s.Referents() {
					refs = append(refs, r.String())
				}
			}
			sort.Strings(refs)
			fmt.Fprintf(w, "  %-5s %-18s in %-12s -> %v\n", kind, n.Pos, fg.Fn.Name, refs)
		}
	}
	io := stats.CountIndirect(u.Graph, sets)
	fmt.Fprintf(w, "reads: %d ops avg %.2f max %d; writes: %d ops avg %.2f max %d\n",
		io.Reads.Total, io.Reads.Avg(), io.Reads.Max,
		io.Writes.Total, io.Writes.Avg(), io.Writes.Max)
}

// printModRef renders the transitive mod/ref sets per function.
func printModRef(w *os.File, u *driver.Unit, ci *core.Result) {
	info := modref.Compute(ci)
	for _, fg := range u.Graph.Funcs {
		if fg.Fn.Body == nil {
			continue
		}
		fmt.Fprintf(w, "%s:\n", fg.Fn.Name)
		var mods, refs []string
		for _, p := range info.Mod[fg].Sorted() {
			mods = append(mods, p.String())
		}
		for _, p := range info.Ref[fg].Sorted() {
			refs = append(refs, p.String())
		}
		fmt.Fprintf(w, "  mod: %v\n", mods)
		fmt.Fprintf(w, "  ref: %v\n", refs)
	}
}

// printCallGraph renders discovered call edges and the §5.1.2 stats.
func printCallGraph(w *os.File, u *driver.Unit, ci *core.Result) {
	for _, fg := range u.Graph.Funcs {
		for _, call := range fg.Calls {
			var names []string
			for _, callee := range ci.Callees[call] {
				names = append(names, callee.Fn.Name)
			}
			fmt.Fprintf(w, "  %s at %s -> %v\n", fg.Fn.Name, call.Pos, names)
		}
	}
	cg := stats.CallGraph(ci)
	fmt.Fprintf(w, "%d called procedures, %.1f avg callers, %d single-caller (%s)\n",
		cg.Procedures, cg.AvgCallers, cg.SingleCaller, report.Pct(100*float64(cg.SingleCaller)/float64(max(cg.Procedures, 1)))+"%")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
