package main

import (
	"sort"
	"strings"
	"testing"
)

// -modular must be invisible in the JSON rendering: same label, same
// census, same lexically-sorted store. Byte identity is the acceptance
// bar — a consumer diffing the two runs sees nothing.
func TestModularJSONByteIdentical(t *testing.T) {
	for _, name := range []string{"part", "anagram", "bc"} {
		exh, _, code := runCLI(t, "-corpus", name, "-print", "json")
		if code != 0 {
			t.Fatalf("%s exhaustive: exit %d", name, code)
		}
		mod, _, code := runCLI(t, "-corpus", name, "-print", "json", "-modular")
		if code != 0 {
			t.Fatalf("%s modular: exit %d", name, code)
		}
		if mod != exh {
			t.Errorf("%s: modular JSON differs from exhaustive:\n%s\nvs\n%s", name, mod, exh)
		}
	}
}

// parseModRef splits "-print modref" output into per-function mod/ref
// element sets (order-insensitively).
func parseModRef(t *testing.T, out string) map[string][]string {
	t.Helper()
	lists := make(map[string][]string)
	fn := ""
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasSuffix(line, ":") && !strings.HasPrefix(line, " "):
			fn = strings.TrimSuffix(line, ":")
		case strings.HasPrefix(line, "  mod: ["), strings.HasPrefix(line, "  ref: ["):
			kind := strings.TrimSpace(line[:7])
			body := strings.TrimSuffix(strings.SplitN(line, "[", 2)[1], "]")
			var elems []string
			if body != "" {
				elems = strings.Fields(body)
			}
			lists[fn+"/"+strings.TrimSuffix(kind, ":")] = elems
		}
	}
	return lists
}

// -modular -print modref reports exactly the exhaustive mod/ref sets,
// rendered in lexical order (the modular solver's path-intern order is
// not deterministic, so only the sorted rendering is).
func TestModularModRefSetsMatchExhaustive(t *testing.T) {
	exhOut, _, code := runCLI(t, "-corpus", "part", "-print", "modref")
	if code != 0 {
		t.Fatalf("exhaustive: exit %d", code)
	}
	modOut, _, code := runCLI(t, "-corpus", "part", "-print", "modref", "-modular")
	if code != 0 {
		t.Fatalf("modular: exit %d", code)
	}
	exh, mod := parseModRef(t, exhOut), parseModRef(t, modOut)
	if len(exh) == 0 || len(mod) != len(exh) {
		t.Fatalf("parsed %d exhaustive lists, %d modular", len(exh), len(mod))
	}
	for key, want := range exh {
		got, ok := mod[key]
		if !ok {
			t.Errorf("%s missing from modular output", key)
			continue
		}
		if !sort.StringsAreSorted(got) {
			t.Errorf("%s: modular list not lexically sorted: %v", key, got)
		}
		ws := append([]string(nil), want...)
		gs := append([]string(nil), got...)
		sort.Strings(ws)
		sort.Strings(gs)
		if strings.Join(ws, " ") != strings.Join(gs, " ") {
			t.Errorf("%s: modular %v, exhaustive %v", key, got, want)
		}
	}

	// The lexical rendering is stable run to run.
	again, _, code := runCLI(t, "-corpus", "part", "-print", "modref", "-modular")
	if code != 0 {
		t.Fatalf("modular rerun: exit %d", code)
	}
	if again != modOut {
		t.Error("modular modref output is not deterministic across runs")
	}
}

// -modular is ci-only, and the CLI's vet path does not take it.
func TestModularFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-corpus", "part", "-modular", "-analysis", "cs"},
		{"-corpus", "part", "-modular", "-backend", "andersen"},
		{"-corpus", "part", "-modular", "-analysis", "baseline"},
		{"-corpus", "part", "-modular", "-vet"},
	} {
		_, errOut, code := runCLI(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, errOut)
		}
		if !strings.Contains(errOut, "-modular") {
			t.Errorf("%v: stderr does not mention -modular: %s", args, errOut)
		}
	}
}

// -modular -stats appends the summary-reuse line after the engine
// counters.
func TestModularStatsLine(t *testing.T) {
	_, errOut, code := runCLI(t, "-corpus", "anagram", "-print", "sizes", "-modular", "-stats")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "aliaslab: modular:") || !strings.Contains(errOut, "procedures") {
		t.Errorf("missing modular stats line: %s", errOut)
	}
}
