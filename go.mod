module aliaslab

go 1.22
